"""Worker-side chaos hooks, end-to-end through a real supervised pool,
plus the regression for dispatch to a worker that died between
delivering a result and receiving its next task."""

import multiprocessing
import time

import pytest

from repro.chaos.plan import ChaosHooks
from repro.exec.pool import (
    CRASH_KIND,
    POINT_HEARTBEAT_LOSS,
    POINT_WORKER_CRASH,
    POINT_WORKER_STALL,
    STALL_KIND,
    WorkerFault,
    WorkPool,
)

ITEMS = list(range(4))


# Task functions must be module-level to be picklable by reference.
def _square(x: int) -> int:
    return x * x


def _assert_no_leaked_children():
    deadline = time.monotonic() + 3.0
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return
        time.sleep(0.05)
    assert multiprocessing.active_children() == []


def _chaos_pool(fault, index=1, **knobs):
    return WorkPool(
        workers=2,
        max_retries=2,
        retry_backoff_s=0.0,
        chaos=ChaosHooks(faults=((index, 0, fault),)),
        **knobs,
    )


class TestWorkerFaultDirectives:
    @pytest.mark.parametrize("after_task", [False, True])
    def test_crash_directive_recovers_via_retry(self, after_task):
        # after_task=True is the adversarial moment: the worker computed
        # the outcome but dies before delivering it — the supervisor
        # must re-run the task, never wait on or trust the lost result.
        fault = WorkerFault(
            point=POINT_WORKER_CRASH, after_task=after_task, exitcode=7
        )
        pool = _chaos_pool(fault)
        outcomes = pool.map(_square, ITEMS)
        assert [o.value for o in outcomes] == [x * x for x in ITEMS]
        hit = outcomes[1]
        assert hit.attempts == 2
        assert [e.kind for e in hit.retried] == [CRASH_KIND]
        assert pool.stats["crashes"] >= 1
        _assert_no_leaked_children()

    def test_stall_directive_detected_killed_and_retried(self):
        fault = WorkerFault(point=POINT_WORKER_STALL, seconds=30.0)
        pool = _chaos_pool(
            fault, heartbeat_interval_s=0.05, stall_timeout_s=0.5
        )
        started = time.monotonic()
        outcomes = pool.map(_square, ITEMS)
        # Detection came from the heartbeat gap, not the 30s sleep.
        assert time.monotonic() - started < 15.0
        assert [o.value for o in outcomes] == [x * x for x in ITEMS]
        assert [e.kind for e in outcomes[1].retried] == [STALL_KIND]
        assert pool.stats["stalls"] >= 1
        _assert_no_leaked_children()

    def test_heartbeat_loss_never_changes_the_result(self):
        # Heartbeats stop but the task completes; without a stall
        # timeout the silence is cosmetic and the result must land
        # on the first attempt.
        fault = WorkerFault(point=POINT_HEARTBEAT_LOSS)
        pool = _chaos_pool(fault, heartbeat_interval_s=0.05)
        outcomes = pool.map(_square, ITEMS)
        assert [o.value for o in outcomes] == [x * x for x in ITEMS]
        assert outcomes[1].attempts == 1
        assert outcomes[1].retried == ()
        _assert_no_leaked_children()

    def test_serial_backend_ignores_chaos_hooks(self):
        # A crash directive in the serial backend would kill the
        # campaign process itself; the hooks are parallel-only.
        fault = WorkerFault(point=POINT_WORKER_CRASH, exitcode=7)
        pool = WorkPool(
            workers=1,
            chaos=ChaosHooks(faults=((1, 0, fault),)),
        )
        outcomes = pool.map(_square, ITEMS)
        assert [o.value for o in outcomes] == [x * x for x in ITEMS]
        assert all(o.attempts == 1 for o in outcomes)


class _KillFirstPool(WorkPool):
    """Kills each worker right after spawning it (first spawn wave only).

    Reproduces the window the dispatch-containment fix covers: the
    parent holds a connection to a worker that is already dead, and the
    next ``conn.send`` raises BrokenPipeError.  Before the fix that
    exception escaped ``map``; now the task is requeued and the dead
    worker retired and replaced.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._killed = 0

    def _spawn_worker(self, ctx, context):
        worker = super()._spawn_worker(ctx, context)
        if self._killed < self.workers:
            self._killed += 1
            worker.proc.kill()
            worker.proc.join(timeout=5.0)
        return worker

    def _alive_after_kill_wave(self):
        return self.stats["spawned"] - self._killed


class TestDispatchToDeadWorker:
    def test_broken_pipe_on_dispatch_is_contained(self):
        # Every first-wave worker is dead before dispatch: send() hits
        # a closed pipe.  The map must still complete every task via
        # replacement workers instead of raising BrokenPipeError.
        pool = _KillFirstPool(workers=2, max_retries=2, retry_backoff_s=0.0)
        outcomes = pool.map(_square, ITEMS)
        assert [o.value for o in outcomes] == [x * x for x in ITEMS]
        assert pool.stats["crashes"] >= 1
        assert pool.stats["replacements"] >= 1
        assert pool._alive_after_kill_wave() >= 1
        _assert_no_leaked_children()
