"""The work pool's three guarantees: order, isolation, cheap context."""

import pytest

from repro.exec.pool import (
    MULTIPROCESSING,
    SERIAL,
    TaskOutcome,
    WorkPool,
    available_parallelism,
    derive_seed,
    task_context,
)


# Task functions must be module-level to be picklable by reference.
def _square(x: int) -> int:
    return x * x


def _fail_on_two(x: int) -> int:
    if x == 2:
        raise ValueError("boom on 2")
    return x


def _read_context(x: int):
    return (task_context(), x)


BACKEND_POOLS = [
    pytest.param(WorkPool(workers=1), id="serial"),
    pytest.param(WorkPool(workers=2), id="multiprocessing"),
]


class TestBackends:
    def test_backend_selection(self):
        assert WorkPool(workers=1).backend == SERIAL
        assert WorkPool(workers=4).backend == MULTIPROCESSING

    def test_workers_floor_at_one(self):
        assert WorkPool(workers=0).workers == 1
        assert WorkPool(workers=-3).workers == 1

    def test_available_parallelism_positive(self):
        assert available_parallelism() >= 1


class TestMap:
    @pytest.mark.parametrize("pool", BACKEND_POOLS)
    def test_results_in_submission_order(self, pool):
        outcomes = pool.map(_square, range(10))
        assert [o.index for o in outcomes] == list(range(10))
        assert [o.value for o in outcomes] == [i * i for i in range(10)]
        assert all(o.ok for o in outcomes)

    @pytest.mark.parametrize("pool", BACKEND_POOLS)
    def test_serial_and_parallel_agree(self, pool):
        serial = WorkPool(workers=1).map(_square, range(8))
        assert [o.value for o in pool.map(_square, range(8))] == [
            o.value for o in serial
        ]

    @pytest.mark.parametrize("pool", BACKEND_POOLS)
    def test_empty_input(self, pool):
        assert pool.map(_square, []) == []

    @pytest.mark.parametrize("pool", BACKEND_POOLS)
    def test_context_reaches_every_task(self, pool):
        outcomes = pool.map(_read_context, range(4), context={"k": "v"})
        assert all(o.value == ({"k": "v"}, i) for i, o in enumerate(outcomes))

    def test_context_cleared_after_serial_map(self):
        WorkPool(workers=1).map(_read_context, [0], context="ctx")
        assert task_context() is None


class TestFaultIsolation:
    @pytest.mark.parametrize("pool", BACKEND_POOLS)
    def test_one_crash_does_not_kill_siblings(self, pool):
        outcomes = pool.map(_fail_on_two, range(5))
        failed = [o for o in outcomes if not o.ok]
        assert len(failed) == 1
        assert failed[0].index == 2
        assert failed[0].error.kind == "ValueError"
        assert "boom on 2" in failed[0].error.message
        assert "boom on 2" in failed[0].error.traceback
        ok = [o.value for o in outcomes if o.ok]
        assert ok == [0, 1, 3, 4]

    def test_outcome_ok_property(self):
        assert TaskOutcome(index=0, value=1).ok
        assert not TaskOutcome(index=0, error=_error()).ok


def _error():
    from repro.exec.pool import TaskError

    return TaskError(kind="ValueError", message="x")


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(11, "episode-3") == derive_seed(11, "episode-3")

    def test_distinct_tasks_distinct_seeds(self):
        seeds = {derive_seed(11, f"episode-{i}") for i in range(100)}
        assert len(seeds) == 100

    def test_master_seed_matters(self):
        assert derive_seed(1, "t") != derive_seed(2, "t")
