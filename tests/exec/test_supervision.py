"""Supervision: timeouts, retries, crash recovery, leak-free shutdown."""

import multiprocessing
import os
import time

import pytest

from repro.exec.pool import (
    CRASH_KIND,
    TIMEOUT_KIND,
    PoolInterrupted,
    TransientTaskError,
    WorkPool,
    task_attempt,
)


# Task functions must be module-level to be picklable by reference.
def _square(x: int) -> int:
    return x * x


def _flaky(x: int) -> int:
    """Fails the first time it runs, succeeds on any retry."""
    if task_attempt() == 0:
        raise TransientTaskError(f"first-attempt failure on {x}")
    return x * x


def _always_transient(x: int) -> int:
    raise TransientTaskError(f"never succeeds on {x}")


def _not_retryable(x: int) -> int:
    raise ValueError(f"deterministic failure on {x}")


def _crash_once(x: int) -> int:
    """Hard-kills its worker process on the first attempt of item 2."""
    if x == 2 and task_attempt() == 0:
        os._exit(7)
    return x * x


def _hang_on_two(x: int) -> int:
    if x == 2:
        time.sleep(60.0)
    return x * x


def _slow_square(x: int) -> int:
    time.sleep(0.3)
    return x * x


def _assert_no_leaked_children():
    # Give straggling worker processes a beat to be reaped.
    deadline = time.monotonic() + 3.0
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return
        time.sleep(0.05)
    assert multiprocessing.active_children() == []


class TestRetries:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_transient_failure_recovered(self, workers):
        pool = WorkPool(workers=workers, max_retries=2, retry_backoff_s=0.0)
        outcomes = pool.map(_flaky, [1, 2, 3])
        assert [o.value for o in outcomes] == [1, 4, 9]
        for outcome in outcomes:
            assert outcome.ok
            assert outcome.attempts == 2
            assert len(outcome.retried) == 1
            assert outcome.retried[0].kind == "TransientTaskError"
        assert pool.stats["retries"] == 3

    @pytest.mark.parametrize("workers", [1, 2])
    def test_retries_exhausted(self, workers):
        pool = WorkPool(workers=workers, max_retries=2, retry_backoff_s=0.0)
        outcomes = pool.map(_always_transient, [1, 2])
        for outcome in outcomes:
            assert not outcome.ok
            assert outcome.attempts == 3
            assert len(outcome.retried) == 2

    @pytest.mark.parametrize("workers", [1, 2])
    def test_deterministic_failures_not_retried(self, workers):
        pool = WorkPool(workers=workers, max_retries=5, retry_backoff_s=0.0)
        outcomes = pool.map(_not_retryable, [1])
        assert outcomes[0].attempts == 1
        assert outcomes[0].error.kind == "ValueError"
        assert not outcomes[0].error.retryable
        assert pool.stats["retries"] == 0

    def test_retry_delay_deterministic_and_bounded(self):
        pool = WorkPool(workers=1, max_retries=3, retry_backoff_s=0.1)
        d1 = pool.retry_delay(7, 1)
        assert d1 == pool.retry_delay(7, 1)  # reproducible
        assert 0.05 <= d1 < 0.1  # base * [0.5, 1.0)
        d2 = pool.retry_delay(7, 2)
        assert 0.1 <= d2 < 0.2  # doubled
        assert pool.retry_delay(8, 1) != d1  # decorrelated across tasks
        assert WorkPool(workers=1, retry_backoff_s=0.0).retry_delay(7, 1) == 0.0


class TestCrashRecovery:
    def test_killed_worker_is_replaced_and_task_retried(self):
        pool = WorkPool(workers=2, max_retries=1, retry_backoff_s=0.0)
        outcomes = pool.map(_crash_once, [1, 2, 3, 4])
        assert [o.value for o in outcomes] == [1, 4, 9, 16]
        crashed = outcomes[1]
        assert crashed.attempts == 2
        assert crashed.retried[0].kind == CRASH_KIND
        assert pool.stats["crashes"] >= 1
        _assert_no_leaked_children()

    def test_crash_without_retries_is_contained(self):
        pool = WorkPool(workers=2)
        outcomes = pool.map(_crash_once, [1, 2, 3, 4])
        assert not outcomes[1].ok
        assert outcomes[1].error.kind == CRASH_KIND
        assert outcomes[1].error.retryable
        # Siblings were unaffected by the dead worker.
        assert [outcomes[i].value for i in (0, 2, 3)] == [1, 9, 16]
        _assert_no_leaked_children()


class TestTimeouts:
    def test_hung_task_killed_siblings_finish(self):
        pool = WorkPool(workers=2, task_timeout=1.0)
        start = time.monotonic()
        outcomes = pool.map(_hang_on_two, [1, 2, 3, 4])
        elapsed = time.monotonic() - start
        assert elapsed < 30.0  # nowhere near the 60s hang
        assert not outcomes[1].ok
        assert outcomes[1].error.kind == TIMEOUT_KIND
        assert outcomes[1].error.retryable
        assert [outcomes[i].value for i in (0, 2, 3)] == [1, 9, 16]
        assert pool.stats["timeouts"] == 1
        _assert_no_leaked_children()

    def test_heartbeats_observed(self):
        pool = WorkPool(workers=2, heartbeat_interval_s=0.05)
        pool.map(_slow_square, [1, 2, 3, 4])
        assert pool.stats["beats"] > 0


class TestCooperativeStop:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_should_stop_drains_and_raises(self, workers):
        pool = WorkPool(workers=workers)
        seen = []

        def on_outcome(outcome):
            seen.append(outcome.index)

        def should_stop():
            return len(seen) >= 2

        with pytest.raises(PoolInterrupted) as err:
            pool.map(
                _slow_square, list(range(8)),
                should_stop=should_stop, on_outcome=on_outcome,
            )
        outcomes = err.value.outcomes
        assert 2 <= len(outcomes) < 8
        # Partial outcomes come back in submission order and are valid.
        assert [o.index for o in outcomes] == sorted(o.index for o in outcomes)
        for outcome in outcomes:
            assert outcome.value == outcome.index**2
        _assert_no_leaked_children()


class TestShutdownNeverLeaks:
    def test_unpicklable_submission_reaps_workers(self):
        # Regression: an unpicklable item used to raise out of map()
        # mid-submission and leave live worker processes behind.
        pool = WorkPool(workers=2)
        items = [1, 2, lambda: None, 4, 5, 6]  # lambdas don't pickle
        with pytest.raises(Exception):
            pool.map(_square, items)
        _assert_no_leaked_children()

    def test_clean_map_leaves_no_children(self):
        WorkPool(workers=4).map(_square, list(range(16)))
        _assert_no_leaked_children()


class TestDeterminismUnderSupervision:
    def test_retried_run_matches_clean_serial_run(self):
        clean = [o.value for o in WorkPool(workers=1).map(_square, [1, 2, 3])]
        for workers in (1, 2, 4):
            pool = WorkPool(
                workers=workers, max_retries=2, retry_backoff_s=0.0
            )
            values = [o.value for o in pool.map(_flaky, [1, 2, 3])]
            assert values == clean


class _SlowUnpickle:
    """A shared context whose unpickle (worker boot) takes longer than
    the task timeout — the spawn-cost scenario queue-wait exemption
    exists for."""

    def __init__(self, delay: float) -> None:
        self.delay = delay

    def __setstate__(self, state):
        self.__dict__.update(state)
        time.sleep(self.delay)


class TestQueueWaitExemption:
    def test_slow_worker_boot_is_not_charged_to_task_timeout(self):
        """``task_timeout`` bounds *execution*, clocked from the
        worker's "start" message.  A spawned worker's interpreter boot
        and context unpickle land in queue wait; charging them to the
        timeout used to kill perfectly healthy quick tasks."""
        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("spawn start method unavailable")
        from repro.obs import Observability, use_obs

        obs = Observability.create()
        pool = WorkPool(workers=2, task_timeout=0.5, start_method="spawn")
        with use_obs(obs):
            outcomes = pool.map(_square, [3, 4], context=_SlowUnpickle(0.9))
        assert [o.ok for o in outcomes] == [True, True]
        assert [o.value for o in outcomes] == [9, 16]
        assert pool.stats["timeouts"] == 0
        # The boot + unpickle time is visible as queue wait, not lost.
        queue_wait = obs.metrics.get("pool.queue_wait_s")
        assert queue_wait is not None
        assert queue_wait.count == 2
        assert queue_wait.vmax >= 0.9
        # ... and execution itself was clocked separately, well under
        # the timeout that would have fired under dispatch-clocking.
        execute = obs.metrics.get("pool.execute_s")
        assert execute is not None
        assert execute.vmax < 0.5
        _assert_no_leaked_children()

    def test_timeout_still_fires_on_genuinely_slow_execution(self):
        """The exemption must not weaken the timeout itself: a task
        that hangs *after* signalling start is still killed."""
        pool = WorkPool(workers=2, task_timeout=0.5, max_retries=0)
        outcomes = pool.map(_hang_on_two, [1, 2, 3])
        assert not outcomes[1].ok
        assert outcomes[1].error.kind == TIMEOUT_KIND
        assert pool.stats["timeouts"] >= 1
        _assert_no_leaked_children()

    def test_queue_wait_observed_behind_busy_workers(self):
        """With one worker and several tasks, the later tasks' queue
        wait (time spent behind siblings) is recorded but never counted
        against their own timeout."""
        from repro.obs import Observability, use_obs

        obs = Observability.create()
        pool = WorkPool(workers=1, task_timeout=1.0)
        with use_obs(obs):
            outcomes = pool.map(_slow_square, [1, 2, 3])
        assert [o.value for o in outcomes] == [1, 4, 9]
        assert pool.stats["timeouts"] == 0
        queue_wait = obs.metrics.get("pool.queue_wait_s")
        assert queue_wait.count == 3
        # the last task queued behind two 0.3s siblings
        assert queue_wait.vmax >= 0.5
