"""Parallel campaigns: byte-identical to serial, crashes contained."""

import json

import pytest

from repro.core.health import STAGE_EXEC
from repro.workloads.campaign import (
    CAMPAIGNS,
    campaign_config,
    isp_quagga_config,
    run_campaign,
)

TRANSFERS = 3
SEED = 5


def _small_config(**overrides):
    config = isp_quagga_config(seed=SEED, transfers=TRANSFERS)
    config.zero_bug_episodes = 0
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


@pytest.fixture(scope="module")
def serial_result():
    return run_campaign(_small_config(), workers=1)


class TestByteIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_workers_do_not_change_the_report(self, serial_result, workers):
        result = run_campaign(_small_config(), workers=workers)
        assert json.dumps(result.to_dict(), sort_keys=True) == json.dumps(
            serial_result.to_dict(), sort_keys=True
        )

    def test_records_in_episode_order(self, serial_result):
        episodes = [r.episode for r in serial_result.records]
        assert episodes == sorted(episodes)

    def test_different_seed_changes_the_report(self, serial_result):
        config = _small_config()
        config.seed = SEED + 1
        other = run_campaign(config, workers=2)
        assert json.dumps(other.to_dict(), sort_keys=True) != json.dumps(
            serial_result.to_dict(), sort_keys=True
        )


class TestFaultIsolation:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_crashed_transfer_becomes_health_issue(self, workers):
        config = _small_config(fail_episodes=(1,))
        result = run_campaign(config, workers=workers)
        # The crashed episode is gone, the siblings completed.
        assert all(r.episode != 1 for r in result.records)
        assert len(result.records) == TRANSFERS - 1
        assert not result.health.ok
        issues = [i for i in result.health.issues if i.stage == STAGE_EXEC]
        assert len(issues) == 1
        assert issues[0].kind == "transfer-crashed"
        assert "episode 1" in issues[0].detail

    def test_surviving_records_match_the_clean_run(self):
        clean = run_campaign(_small_config(), workers=1)
        crashed = run_campaign(_small_config(fail_episodes=(0,)), workers=2)
        clean_by_episode = {r.episode: r.to_dict() for r in clean.records}
        for record in crashed.records:
            assert record.to_dict() == clean_by_episode[record.episode]


class TestRegistry:
    def test_known_campaigns(self):
        assert set(CAMPAIGNS) == {"ISP_A-Vendor", "ISP_A-Quagga", "RV"}

    def test_campaign_config_passes_overrides(self):
        config = campaign_config("RV", seed=3, transfers=7)
        assert config.name == "RV"
        assert config.seed == 3
        assert config.transfers == 7

    def test_unknown_campaign_raises(self):
        with pytest.raises(ValueError, match="unknown campaign"):
            campaign_config("nope")
