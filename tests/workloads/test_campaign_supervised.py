"""Supervised campaigns: retries, checkpoints, resume, watchdog budgets.

The contract under test is the robustness acceptance criterion: a
campaign that crashes transiently, is interrupted, or hits a watchdog
budget must still end in a result byte-identical to (or an accounted
subset of) the clean uninterrupted run.
"""

import json

import pytest

from repro.core.health import STAGE_EXEC, TraceHealth
from repro.exec.pool import WorkPool
from repro.workloads.campaign import (
    CampaignResult,
    isp_quagga_config,
    run_campaign,
)
from repro.workloads.checkpoint import (
    CampaignInterrupted,
    CampaignJournal,
    CheckpointMismatch,
    GracefulShutdown,
    config_digest,
)

TRANSFERS = 3
SEED = 5


def _small_config(**overrides):
    config = isp_quagga_config(seed=SEED, transfers=TRANSFERS)
    config.zero_bug_episodes = 0
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def _dump(result: CampaignResult) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def clean_result():
    return run_campaign(_small_config(), workers=1)


class TestRetriedRunByteIdentity:
    """Satellite: injected transient crashes + retries == clean run."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_recovered_campaign_matches_clean_run(self, clean_result, workers):
        pool = WorkPool(workers=workers, max_retries=2, retry_backoff_s=0.0)
        result = run_campaign(
            _small_config(fail_episodes=(0, 1)), pool=pool
        )
        # All episodes recovered; records byte-identical to the clean run.
        assert len(result.records) == TRANSFERS
        assert [r.to_dict() for r in result.records] == [
            r.to_dict() for r in clean_result.records
        ]
        # The recoveries are accounted, but benign: no failures.
        retried = [
            i for i in result.health.issues if i.kind == "task-retried"
        ]
        assert len(retried) == 2
        assert all(i.benign and i.stage == STAGE_EXEC for i in retried)
        assert result.health.failures == []

    def test_retried_pcap_checkpoints_match_clean_checkpoints(
        self, tmp_path
    ):
        clean_dir = tmp_path / "clean"
        retried_dir = tmp_path / "retried"
        run_campaign(_small_config(), checkpoint_dir=clean_dir)
        pool = WorkPool(workers=2, max_retries=2, retry_backoff_s=0.0)
        run_campaign(
            _small_config(fail_episodes=(1,)),
            pool=pool, checkpoint_dir=retried_dir,
        )
        clean_pcaps = sorted((clean_dir / "episodes").glob("*.pcap"))
        retried_pcaps = sorted((retried_dir / "episodes").glob("*.pcap"))
        assert [p.name for p in clean_pcaps] == [
            p.name for p in retried_pcaps
        ]
        for a, b in zip(clean_pcaps, retried_pcaps):
            assert a.read_bytes() == b.read_bytes()


class TestInterruptAndResume:
    """Satellite: kill mid-run, resume, merged result == clean run."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_resumed_run_equals_uninterrupted_run(
        self, clean_result, tmp_path, workers
    ):
        ckpt = tmp_path / "ckpt"
        shutdown = GracefulShutdown(install_signals=False)
        done = []

        def stop_after_one(task, outcome):
            done.append(task)
            if len(done) >= 1:
                shutdown.request()

        with pytest.raises(CampaignInterrupted) as err:
            run_campaign(
                _small_config(), workers=workers,
                checkpoint_dir=ckpt, shutdown=shutdown,
                on_episode=stop_after_one,
            )
        assert 1 <= err.value.completed < err.value.total
        assert err.value.checkpoint_dir == ckpt
        assert "--resume" in str(err.value)

        health = TraceHealth()
        resumed = run_campaign(
            _small_config(), workers=workers,
            checkpoint_dir=ckpt, resume_from=ckpt, health=health,
        )
        # Byte-identical records, totals, and per-record payloads —
        # including ordering, which the fold reconstructs from the
        # submission order, not the completion order.
        assert len(resumed.records) == len(clean_result.records)
        assert [r.to_dict() for r in resumed.records] == [
            r.to_dict() for r in clean_result.records
        ]
        assert resumed.total_packets == clean_result.total_packets
        assert resumed.total_bytes == clean_result.total_bytes
        # The only health delta vs. a clean run is the benign marker.
        marker = [i for i in health.issues if i.kind == "campaign-resumed"]
        assert len(marker) == 1
        assert marker[0].benign
        assert health.failures == []

    def test_resume_of_complete_checkpoint_runs_nothing(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        first = run_campaign(_small_config(), checkpoint_dir=ckpt)
        ran = []
        resumed = run_campaign(
            _small_config(), checkpoint_dir=ckpt, resume_from=ckpt,
            on_episode=lambda task, outcome: ran.append(task),
        )
        assert ran == []  # every episode restored from the journal
        assert [r.to_dict() for r in resumed.records] == [
            r.to_dict() for r in first.records
        ]


class TestCheckpointJournal:
    def test_layout_and_completion_markers(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        run_campaign(_small_config(), checkpoint_dir=ckpt)
        # One CRC-framed journal entry per episode; the pcaps ride
        # alongside as separate atomic artifacts.
        journal = CampaignJournal(ckpt, _small_config())
        assert len(journal.load()) == TRANSFERS
        pcaps = sorted(p.name for p in (ckpt / "episodes").glob("*.pcap"))
        assert len(pcaps) == TRANSFERS
        raw = (ckpt / "journal.bin").read_bytes()
        assert raw.startswith(b"TDJ2")
        # Both manifest copies exist and agree on the config binding.
        for name in ("manifest.json", "manifest.replica.json"):
            manifest = json.loads((ckpt / name).read_text())
            assert manifest["config_sha256"] == config_digest(_small_config())

    def test_resume_under_different_config_refuses(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        run_campaign(_small_config(), checkpoint_dir=ckpt)
        with pytest.raises(CheckpointMismatch, match="different"):
            run_campaign(
                _small_config(seed=SEED + 1),
                checkpoint_dir=ckpt, resume_from=ckpt,
            )

    def test_torn_tail_is_salvaged_and_rerun_not_trusted(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        run_campaign(_small_config(), checkpoint_dir=ckpt)
        journal_path = ckpt / "journal.bin"
        raw = journal_path.read_bytes()
        # Tear the last frame mid-payload, as a crash mid-append would.
        journal_path.write_bytes(raw[: len(raw) - 10])
        health = TraceHealth()
        journal = CampaignJournal(ckpt, _small_config(), health=health)
        assert len(journal.load()) == TRANSFERS - 1
        salvage = [
            i for i in health.issues if i.kind == "checkpoint-salvaged"
        ]
        assert len(salvage) == 1 and salvage[0].benign
        # The torn bytes were quarantined and the journal truncated to
        # the longest valid prefix.
        assert list(ckpt.glob("journal.torn-*"))
        assert len(journal_path.read_bytes()) < len(raw) - 10
        ran = []
        run_campaign(
            _small_config(), checkpoint_dir=ckpt, resume_from=ckpt,
            on_episode=lambda task, outcome: ran.append(task),
        )
        assert len(ran) == 1  # only the torn episode re-ran


class TestWatchdogContainment:
    def test_event_budget_contains_pathological_episode(self):
        # A budget far below any real episode: every episode aborts,
        # the campaign itself still completes and accounts each one.
        result = run_campaign(_small_config(sim_event_budget=10))
        assert result.records == []
        issues = result.health.failures
        assert issues, "budget aborts must surface as failures"
        assert {i.kind for i in issues} == {"sim-budget-exceeded"}
        assert all(i.stage == STAGE_EXEC for i in issues)

    def test_generous_budget_is_invisible(self, clean_result):
        result = run_campaign(_small_config())  # default 5M events
        assert result.health.ok
        assert _dump(result) == _dump(clean_result)
