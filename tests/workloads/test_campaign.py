"""Tests for the campaign layer (episodes, mixtures, special scenarios)."""

import pytest

from repro.workloads.campaign import (
    CLEAN,
    DOWNSTREAM_LOSS,
    LOADED_COLLECTOR,
    PATHOLOGIES,
    TIMER,
    UPSTREAM_LOSS,
    ZERO_ACK_BUG,
    _draw_specs,
    isp_quagga_config,
    isp_vendor_config,
    routeviews_config,
    run_episode,
    run_peer_group_episode,
    run_zero_ack_bug_episode,
)


class TestSpecDrawing:
    def test_deterministic_for_seed(self):
        a, _ = _draw_specs(isp_quagga_config(seed=7, transfers=10))
        b, _ = _draw_specs(isp_quagga_config(seed=7, transfers=10))
        assert [(s.pathology, s.rtt_ms, s.timer_ms) for s in a] == [
            (s.pathology, s.rtt_ms, s.timer_ms) for s in b
        ]

    def test_different_seeds_differ(self):
        a, _ = _draw_specs(isp_quagga_config(seed=7, transfers=10))
        b, _ = _draw_specs(isp_quagga_config(seed=8, transfers=10))
        assert [(s.pathology, s.rtt_ms) for s in a] != [
            (s.pathology, s.rtt_ms) for s in b
        ]

    def test_pathologies_from_mixture(self):
        specs, _ = _draw_specs(isp_vendor_config(transfers=40))
        assert {s.pathology for s in specs} <= set(PATHOLOGIES)
        # With 40 draws, several distinct pathologies should appear.
        assert len({s.pathology for s in specs}) >= 3

    def test_rv_config_differs(self):
        rv = routeviews_config()
        assert rv.collector_window == 16384
        assert rv.rto_backoff_factor > 2.0
        specs, _ = _draw_specs(rv)
        assert all(15.0 <= s.rtt_ms <= 120.0 for s in specs)

    def test_timer_specs_use_known_values(self):
        specs, _ = _draw_specs(isp_quagga_config(transfers=60))
        timers = {s.timer_ms for s in specs if s.pathology == TIMER}
        assert timers <= {100, 200}


def find_spec(config, pathology):
    specs, _ = _draw_specs(config)
    for spec in specs:
        if spec.pathology == pathology:
            return spec
    pytest.skip(f"mixture produced no {pathology} episode")


class TestEpisodes:
    def test_clean_episode_produces_record(self):
        spec = find_spec(isp_quagga_config(transfers=12), CLEAN)
        (record,) = run_episode(spec)
        assert record.pathology == CLEAN
        assert record.duration_us > 0
        assert record.data_packets > 10
        assert record.mct_ended_by in ("stream-end", "duplicates", "idle")

    def test_timer_episode_detected(self):
        spec = find_spec(isp_quagga_config(transfers=30), TIMER)
        # Pin the timer parameters so the gap signature is unambiguous
        # (huge ticks can saturate TCP and legitimately blur the gaps).
        spec.timer_ms = 200
        spec.messages_per_tick = 10
        spec.rtt_ms = 9.0
        (record,) = run_episode(spec)
        assert record.timer.detected
        assert record.true_timer_us is not None
        # Inferred within 25% of the injected timer.
        assert record.timer.timer_us == pytest.approx(
            record.true_timer_us, rel=0.25
        )
        assert record.factors.major_factors().get("sender") == "bgp_sender_app"

    def test_downstream_loss_episode_flagged(self):
        spec = find_spec(isp_vendor_config(transfers=40), DOWNSTREAM_LOSS)
        (record,) = run_episode(spec)
        assert record.consecutive.detected or (
            record.factors.ratios["receiver_local_loss"] > 0
        )

    def test_loaded_collector_episode(self):
        spec = find_spec(isp_quagga_config(transfers=30), LOADED_COLLECTOR)
        records = run_episode(spec)
        assert len(records) == spec.concurrency
        # At least one transfer must show receiver-side pressure.
        assert any(
            r.factors.group_ratios["receiver"] > 0.2 for r in records
        )

    def test_zero_ack_bug_episode(self):
        record = run_zero_ack_bug_episode(isp_quagga_config())
        assert record is not None
        assert record.pathology == ZERO_ACK_BUG
        assert record.zero_bug.detected


class TestPeerGroupEpisode:
    def test_blocking_detected_and_matches_hold_time(self):
        result = run_peer_group_episode(
            hold_time_s=20, table_size=8_000, fail_after_s=0.1
        )
        assert result.blocked_report.detected
        # Blocking lasts roughly the hold time (paper: 90-180s scaled).
        assert 12e6 < result.blocking_duration_us < 28e6
        assert result.quagga_record is not None
        assert result.quagga_record.keepalive_pause.detected

    def test_quagga_duration_includes_block(self):
        result = run_peer_group_episode(
            hold_time_s=20, table_size=8_000, fail_after_s=0.1
        )
        # MCT's idle timeout (30s) exceeds the 20s block, so the
        # estimated transfer extent spans the blocked period.
        assert result.quagga_record.duration_s > 15
