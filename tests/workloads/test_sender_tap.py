"""Tests for sender-side sniffer deployments (paper section III-C2).

With the tap at the router's egress, losses in the router's own output
queue happen *before* capture (upstream) and map to SendLocalLoss,
while path losses happen after capture (downstream) and map to
NetworkLoss — the mirror image of the collector-side deployment.
"""

import random

import pytest

from repro.analysis.series import SNIFFER_AT_SENDER, SeriesConfig
from repro.analysis.tdat import analyze_pcap
from repro.bgp.table import generate_table
from repro.core.units import seconds
from repro.netsim.link import BernoulliLoss, WindowLoss
from repro.netsim.random import RandomStreams
from repro.netsim.simulator import Simulator
from repro.workloads.scenarios import MonitoringSetup, RouterParams


def run_sender_tap(nic_loss=None, path_loss=None, table_size=30_000, seed=75):
    sim = Simulator()
    setup = MonitoringSetup(sim)
    table = generate_table(table_size, random.Random(seed))
    handle = setup.add_router(
        RouterParams(
            name="r1",
            ip="10.75.0.1",
            table=table,
            tap_location="sender",
            nic_loss=nic_loss,
            upstream_loss=path_loss,
        )
    )
    setup.start()
    sim.run(until_us=seconds(300))
    report = analyze_pcap(
        setup.sniffer.sorted_records(),
        sniffer_location=SNIFFER_AT_SENDER,
        min_data_packets=2,
    )
    return next(iter(report)), setup, handle


class TestSenderTapTopology:
    def test_clean_transfer_analyzes(self):
        analysis, setup, handle = run_sender_tap()
        assert setup.collector.updates_archived > 0
        profile = analysis.connection.profile
        # With a sender-side tap, d1 (toward the receiver) is the big
        # half of the RTT and d2 (toward the sender) tiny.
        assert profile.d2_us < profile.d1_us

    def test_invalid_tap_location_rejected(self):
        sim = Simulator()
        setup = MonitoringSetup(sim)
        with pytest.raises(ValueError):
            setup.add_router(
                RouterParams(name="x", ip="10.0.9.1", tap_location="middle-ish")
            )


class TestSenderLocalLoss:
    def test_nic_drops_map_to_sender_local_loss(self):
        # Random drops: a full blackout before the tap leaves no
        # sequence evidence at all (go-back-N keeps the stream
        # contiguous), but scattered drops show up as filled holes.
        analysis, setup, handle = run_sender_tap(
            nic_loss=BernoulliLoss(0.04, RandomStreams(76).stream("nic"))
        )
        assert handle.nic_link.stats.dropped_loss > 0
        # Drops before the tap are upstream; the sender-side mapping
        # makes them the router's own (local) losses.
        assert analysis.factors.ratios["sender_local_loss"] > 0
        assert analysis.factors.ratios["receiver_local_loss"] == 0

    def test_path_loss_maps_to_network(self):
        analysis, setup, handle = run_sender_tap(
            path_loss=WindowLoss([(60_000, 400_000)])
        )
        assert handle.wan_link.stats.dropped_loss > 0
        assert analysis.factors.ratios["network_packet_loss"] > 0
        assert analysis.factors.ratios["sender_local_loss"] == 0

    def test_sender_group_includes_local_loss(self):
        analysis, _, _ = run_sender_tap(
            nic_loss=BernoulliLoss(0.05, RandomStreams(77).stream("nic"))
        )
        assert analysis.factors.group_ratios["sender"] > 0.1
