"""Checkpoint-journal hardening: CRC framing, tail salvage at every
byte offset, manifest double-write recovery, and the injectable
filesystem seam.

The contract under test: no single torn write, bit flip, or filesystem
failure may cost more than the affected entries — the journal always
recovers its longest valid prefix, a resume from any salvaged state is
byte-identical to the clean run, and a write failure surfaces as a
typed, resumable interruption.
"""

import json
import pickle
import shutil
import zlib
from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import FaultyCheckpointFs, FsFault
from repro.chaos.plan import FS_ENOSPC
from repro.chaos.runner import chaos_config
from repro.core.health import TraceHealth
from repro.workloads.campaign import CampaignResult, run_campaign
from repro.workloads.checkpoint import (
    FORMAT,
    FRAME_HEADER,
    FRAME_MAGIC,
    JOURNAL_NAME,
    MANIFEST_NAME,
    MANIFEST_REPLICA_NAME,
    POINT_CHECKPOINT_WRITE,
    POINT_JOURNAL_APPEND,
    CampaignInterrupted,
    CampaignJournal,
    CheckpointMismatch,
    CheckpointWriteError,
    config_digest,
    use_checkpoint_fs,
)

TRANSFERS = 3


@dataclass
class _TinyConfig:
    """A minimal config stand-in: enough for a manifest binding."""

    name: str = "tiny"
    transfers: int = TRANSFERS


def _frame(index: int, payload: bytes | None = None) -> bytes:
    """One journal frame, exactly as CampaignJournal.write emits it."""
    if payload is None:
        payload = pickle.dumps(
            {
                "format": FORMAT,
                "task": ("episode", index),
                "records": [f"record-{index}"],
                "health": None,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    return FRAME_HEADER.pack(
        FRAME_MAGIC, len(payload), zlib.crc32(payload)
    ) + payload


def _records_dump(result: CampaignResult) -> str:
    # Health is deliberately excluded: a salvaged resume legitimately
    # carries benign bookkeeping a clean run does not.
    payload = result.to_dict()
    return json.dumps(
        {
            "records": payload["records"],
            "total_packets": payload["total_packets"],
            "total_bytes": payload["total_bytes"],
        },
        sort_keys=True,
    )


class TestSalvageAtEveryOffset:
    """The tentpole property, exhaustively: truncate a valid journal at
    *every* byte offset; salvage must recover exactly the frames that
    are fully present and quarantine the rest."""

    def test_every_truncation_offset_recovers_longest_valid_prefix(
        self, tmp_path
    ):
        frames = [_frame(i) for i in range(TRANSFERS)]
        full = b"".join(frames)
        boundaries = [0]
        for frame in frames:
            boundaries.append(boundaries[-1] + len(frame))
        for cut in range(len(full) + 1):
            root = tmp_path / f"cut-{cut:04d}"
            CampaignJournal(root, _TinyConfig())  # writes the manifests
            (root / JOURNAL_NAME).write_bytes(full[:cut])
            health = TraceHealth()
            journal = CampaignJournal(root, _TinyConfig(), health=health)
            whole = sum(1 for b in boundaries[1:] if b <= cut)
            valid_end = boundaries[whole]
            assert len(journal.load()) == whole, f"cut at {cut}"
            assert journal.load() == {
                ("episode", i): ([f"record-{i}"], None)
                for i in range(whole)
            }
            # The file is truncated back to the last whole frame ...
            assert (root / JOURNAL_NAME).read_bytes() == full[:valid_end]
            torn = [i for i in health.issues
                    if i.kind == "checkpoint-salvaged"]
            quarantine = root / f"journal.torn-{valid_end:08d}"
            if cut == valid_end:
                # ... and a cut on a frame boundary loses nothing.
                assert torn == []
                assert not quarantine.exists()
            else:
                assert len(torn) == 1 and torn[0].benign
                assert torn[0].bytes_lost == cut - valid_end
                assert quarantine.read_bytes() == full[valid_end:cut]


@pytest.fixture(scope="module")
def pristine(tmp_path_factory):
    """One clean checkpointed micro campaign, shared read-only."""
    ckpt = tmp_path_factory.mktemp("pristine") / "ckpt"
    result = run_campaign(chaos_config(TRANSFERS), checkpoint_dir=ckpt)
    return ckpt, _records_dump(result)


class TestTruncatedResumeByteIdentity:
    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_resume_after_random_truncation_matches_clean_run(
        self, pristine, tmp_path_factory, data
    ):
        ckpt, clean = pristine
        size = len((ckpt / JOURNAL_NAME).read_bytes())
        cut = data.draw(st.integers(0, size - 1), label="truncate_at")
        work = tmp_path_factory.mktemp("torn") / "ckpt"
        shutil.copytree(ckpt, work)
        raw = (work / JOURNAL_NAME).read_bytes()
        (work / JOURNAL_NAME).write_bytes(raw[:cut])
        health = TraceHealth()
        resumed = run_campaign(
            chaos_config(TRANSFERS),
            checkpoint_dir=work, resume_from=work, health=health,
        )
        assert _records_dump(resumed) == clean
        assert health.failures == []


class TestFrameDamage:
    def test_crc_bitflip_truncates_from_the_damaged_frame(self, tmp_path):
        # A flipped bit fails the CRC, and a frame that cannot be
        # trusted poisons everything after it: prefix salvage, by
        # design, treats the damage point as the new tail.
        frames = [_frame(i) for i in range(TRANSFERS)]
        flipped = bytearray(b"".join(frames))
        flip_at = len(frames[0]) + FRAME_HEADER.size + 2
        flipped[flip_at] ^= 0x40
        root = tmp_path / "ckpt"
        CampaignJournal(root, _TinyConfig())
        (root / JOURNAL_NAME).write_bytes(bytes(flipped))
        health = TraceHealth()
        journal = CampaignJournal(root, _TinyConfig(), health=health)
        assert set(journal.load()) == {("episode", 0)}
        salvage = [i for i in health.issues
                   if i.kind == "checkpoint-salvaged"]
        assert len(salvage) == 1 and salvage[0].benign
        quarantine = root / f"journal.torn-{len(frames[0]):08d}"
        assert quarantine.read_bytes() == bytes(flipped[len(frames[0]):])

    def test_crc_valid_undecodable_entry_is_skipped_not_torn(
        self, tmp_path
    ):
        # A correctly framed entry whose payload will not decode (wrong
        # format version, foreign pickle) is an isolated casualty: the
        # scan skips it and keeps trusting the frames behind it.
        frames = [
            _frame(0),
            _frame(1, payload=b"not a pickle at all"),
            _frame(2),
        ]
        root = tmp_path / "ckpt"
        CampaignJournal(root, _TinyConfig())
        raw = b"".join(frames)
        (root / JOURNAL_NAME).write_bytes(raw)
        health = TraceHealth()
        journal = CampaignJournal(root, _TinyConfig(), health=health)
        assert set(journal.load()) == {("episode", 0), ("episode", 2)}
        skipped = [i for i in health.issues
                   if i.kind == "checkpoint-entry-skipped"]
        assert len(skipped) == 1 and skipped[0].benign
        assert health.failures == []
        # Nothing was truncated or quarantined: the file is intact.
        assert (root / JOURNAL_NAME).read_bytes() == raw
        assert not list(root.glob("journal.torn-*"))


class TestManifestDoubleWrite:
    def _open(self, root, health=None):
        return CampaignJournal(root, _TinyConfig(), health=health)

    def test_missing_primary_recovers_from_replica_and_heals(
        self, tmp_path
    ):
        root = tmp_path / "ckpt"
        self._open(root)
        (root / MANIFEST_NAME).unlink()
        self._open(root)  # no CheckpointMismatch: replica suffices
        healed = json.loads((root / MANIFEST_NAME).read_text())
        assert healed["config_sha256"] == config_digest(_TinyConfig())

    def test_corrupt_replica_recovers_from_primary_and_heals(
        self, tmp_path
    ):
        root = tmp_path / "ckpt"
        self._open(root)
        (root / MANIFEST_REPLICA_NAME).write_text("{torn garbag")
        self._open(root)
        assert (root / MANIFEST_REPLICA_NAME).read_bytes() == (
            root / MANIFEST_NAME
        ).read_bytes()

    def test_both_copies_unreadable_refuses(self, tmp_path):
        root = tmp_path / "ckpt"
        self._open(root)
        (root / MANIFEST_NAME).write_text("{")
        (root / MANIFEST_REPLICA_NAME).unlink()
        with pytest.raises(CheckpointMismatch, match="unreadable"):
            self._open(root)

    def test_replica_is_written_before_the_primary(self, tmp_path):
        # A failure on the second manifest write must leave the
        # *replica* on disk (the primary is the later write), so the
        # next open recovers instead of finding a torn-only checkpoint.
        root = tmp_path / "ckpt"
        fs = FaultyCheckpointFs(
            FsFault(
                point=POINT_CHECKPOINT_WRITE, mode=FS_ENOSPC, at_call=2
            )
        )
        with use_checkpoint_fs(fs):
            with pytest.raises(CheckpointWriteError):
                self._open(root)
        assert fs.injected
        assert (root / MANIFEST_REPLICA_NAME).exists()
        assert not (root / MANIFEST_NAME).exists()
        self._open(root)  # recovers from the replica ...
        assert (root / MANIFEST_NAME).exists()  # ... and heals


class TestWriteFailureIsTypedAndResumable:
    def test_journal_enospc_interrupts_then_resume_completes(
        self, tmp_path
    ):
        config = chaos_config(TRANSFERS)
        baseline = _records_dump(run_campaign(config))
        ckpt = tmp_path / "ckpt"
        fs = FaultyCheckpointFs(
            FsFault(
                point=POINT_JOURNAL_APPEND, mode=FS_ENOSPC, at_call=2
            )
        )
        with use_checkpoint_fs(fs):
            with pytest.raises(CampaignInterrupted) as err:
                run_campaign(config, checkpoint_dir=ckpt)
        assert fs.injected
        assert "checkpoint write failed" in err.value.reason
        # Exactly the episodes journaled before the failure count as
        # completed; the failed append itself is not trusted.
        assert err.value.completed == 1
        assert err.value.checkpoint_dir == ckpt
        health = TraceHealth()
        resumed = run_campaign(
            config, checkpoint_dir=ckpt, resume_from=ckpt, health=health,
        )
        assert _records_dump(resumed) == baseline
        assert health.failures == []
