"""Tests for reset storms and steady-state churn."""

import random

import pytest

from repro.analysis.mct import minimum_collection_time
from repro.analysis.tdat import analyze_pcap
from repro.bgp.messages import UpdateMessage
from repro.bgp.table import generate_table
from repro.core.units import seconds
from repro.netsim.random import RandomStreams
from repro.netsim.simulator import Simulator
from repro.workloads.churn import ChurnGenerator, ResetStorm
from repro.workloads.scenarios import MonitoringSetup, RouterParams


class TestResetStorm:
    def run_storm(self, resets=3, interval_s=5.0, table_size=8_000):
        sim = Simulator()
        setup = MonitoringSetup(sim)
        table = generate_table(table_size, random.Random(71))
        handle = setup.add_router(
            RouterParams(name="stormy", ip="10.71.0.1", table=table)
        )
        setup.start()
        storm = ResetStorm(
            sim, setup, handle,
            reset_interval_us=seconds(interval_s),
            resets=resets,
        )
        sim.run(until_us=seconds(interval_s * (resets + 2)))
        return sim, setup, storm, table

    def test_each_reset_is_a_new_connection(self):
        sim, setup, storm, table = self.run_storm(resets=3)
        assert storm.incarnations == 4  # initial + 3 resets
        report = analyze_pcap(setup.sniffer.sorted_records(), min_data_packets=2)
        assert len(report) == 4
        ports = {key[1] if key[3] == 179 else key[3] for key in report.analyses}
        assert len(ports) == 4

    def test_every_incarnation_transfers_the_table(self):
        sim, setup, storm, table = self.run_storm(resets=2)
        expected = len(table.to_updates())
        # The collector accumulated one full table per incarnation.
        assert setup.collector.updates_archived == 3 * expected

    def test_transfers_have_similar_durations(self):
        """Same table, same conditions: stretch ratio ~1 (Fig 4 baseline)."""
        sim, setup, storm, table = self.run_storm(resets=3)
        records = setup.sniffer.sorted_records()
        durations = []
        for key, stream in _reconstruct(records).items():
            updates = [(m.timestamp_us, m.message) for m in stream.updates()]
            transfer = minimum_collection_time(updates)
            if transfer is not None and transfer.updates > 1:
                durations.append(transfer.duration_us)
        assert len(durations) == 4
        assert max(durations) / min(durations) < 2.0


def _reconstruct(records):
    from repro.tools.pcap2bgp import pcap_to_bgp

    return pcap_to_bgp(records)


class TestChurnGenerator:
    def run_with_churn(self, rate_per_s=20.0, table_size=6_000):
        sim = Simulator()
        streams = RandomStreams(72)
        setup = MonitoringSetup(sim)
        table = generate_table(table_size, random.Random(72))
        handle = setup.add_router(
            RouterParams(name="churny", ip="10.72.0.1", table=table)
        )
        setup.start()
        churn_holder = {}

        def start_churn(session):
            session.announce_table()
            churn_holder["churn"] = ChurnGenerator(
                sim, session, table, rate_per_s, streams.stream("churn"),
                start_after_us=seconds(2),
            )

        handle.session.on_established = start_churn
        sim.run(until_us=seconds(60))
        return sim, setup, handle, table, churn_holder["churn"]

    def test_churn_flows_after_transfer(self):
        sim, setup, handle, table, churn = self.run_with_churn()
        assert churn.updates_sent > 100
        # The collector keeps archiving updates past the transfer.
        assert setup.collector.updates_archived > len(table.to_updates())

    def test_mct_ends_at_transfer_despite_churn(self):
        sim, setup, handle, table, churn = self.run_with_churn()
        updates = [
            (r.timestamp_us, r.message)
            for r in setup.collector.archive
            if isinstance(r.message, UpdateMessage)
        ]
        transfer = minimum_collection_time(updates, start_us=0)
        assert transfer.ended_by == "duplicates"
        # The estimated end falls before the churn phase (which starts
        # 2s after establishment), not at the end of the capture.
        assert transfer.end_us < seconds(3)
        assert transfer.prefixes == len(table)

    def test_withdrawals_update_collector_rib(self):
        sim, setup, handle, table, churn = self.run_with_churn(rate_per_s=40.0)
        assert churn.withdrawals_sent > 0
        # Every churned prefix was re-announced after its withdrawal,
        # so the RIB converges back to the full table size.
        assert len(setup.collector.rib) == pytest.approx(len(table), abs=2)

    def test_bad_rate_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ChurnGenerator(sim, None, generate_table(10, random.Random(1)),
                           0, random.Random(1))
