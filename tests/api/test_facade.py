"""The repro.api facade, its knobs, and the deprecation shims."""

import ast
import warnings
from pathlib import Path

import pytest

import repro.analysis
import repro.tools
import repro.workloads
from repro.api import AnalysisRequest, CampaignRequest, Pipeline
from repro.faults.fuzz import clean_trace_bytes
from repro.workloads.campaign import CampaignConfig, isp_quagga_config

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

#: name -> package it must no longer be imported from (use repro.api or
#: the engine module instead).
SHIMMED = {
    "analyze_pcap": "repro.analysis",
    "pcap_to_bgp": "repro.tools",
    "run_campaign": "repro.workloads",
}


@pytest.fixture(scope="module")
def clean_pcap(tmp_path_factory):
    path = tmp_path_factory.mktemp("api") / "clean.pcap"
    path.write_bytes(clean_trace_bytes(table_prefixes=2_000, duration_s=60))
    return path


class TestPipelineAnalyze:
    def test_analyze_matches_engine(self, clean_pcap):
        from repro.analysis.tdat import analyze_pcap

        facade = Pipeline().analyze(clean_pcap)
        engine = analyze_pcap(clean_pcap)
        assert list(facade.analyses) == list(engine.analyses)
        assert facade.health.ok == engine.health.ok

    @pytest.mark.parametrize("knobs", [{"streaming": True}, {"workers": 2}])
    def test_execution_knobs_preserve_results(self, clean_pcap, knobs):
        base = Pipeline().analyze(clean_pcap)
        tuned = Pipeline(**knobs).analyze(clean_pcap)
        assert list(tuned.analyses) == list(base.analyses)

    def test_request_object_form(self, clean_pcap):
        report = Pipeline().run(AnalysisRequest(source=str(clean_pcap)))
        assert len(report) == 1

    def test_workers_zero_means_all_cpus(self):
        from repro.exec.pool import available_parallelism

        assert Pipeline(workers=0).workers == available_parallelism()

    def test_iter_analyze(self, clean_pcap):
        analyses = list(Pipeline().iter_analyze(clean_pcap))
        assert len(analyses) == 1

    def test_extract_bgp(self, clean_pcap):
        streams = Pipeline().extract_bgp(clean_pcap)
        assert len(streams) == 1

    def test_unknown_request_type_rejected(self):
        with pytest.raises(TypeError, match="not a pipeline request"):
            Pipeline().run(object())


class TestCampaignRequest:
    def test_resolve_by_name(self):
        config = CampaignRequest(name="ISP_A-Quagga", seed=9, transfers=4).resolve()
        assert isinstance(config, CampaignConfig)
        assert (config.seed, config.transfers) == (9, 4)

    def test_resolve_explicit_config_with_overrides(self):
        base = isp_quagga_config()
        config = CampaignRequest(
            config=base, transfers=2, overrides={"zero_bug_episodes": 0}
        ).resolve()
        assert config.transfers == 2
        assert config.zero_bug_episodes == 0
        assert base.transfers != 2  # original untouched

    def test_needs_exactly_one_of_name_or_config(self):
        with pytest.raises(ValueError):
            CampaignRequest().resolve()
        with pytest.raises(ValueError):
            CampaignRequest(name="RV", config=isp_quagga_config()).resolve()


class TestDeprecationShims:
    @pytest.mark.parametrize("name,package", sorted(SHIMMED.items()))
    def test_shim_warns_and_returns_the_engine_object(self, name, package):
        import importlib

        module = importlib.import_module(package)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shimmed = getattr(module, name)
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        ), f"{package}.{name} did not warn"
        engine_module = {
            "analyze_pcap": "repro.analysis.tdat",
            "pcap_to_bgp": "repro.tools.pcap2bgp",
            "run_campaign": "repro.workloads.campaign",
        }[name]
        engine = getattr(importlib.import_module(engine_module), name)
        assert shimmed is engine

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.analysis.does_not_exist

    @pytest.mark.parametrize("name,package", sorted(SHIMMED.items()))
    def test_shim_warning_points_at_the_caller(self, name, package):
        """The warning blames this file, not the import machinery.

        A ``from pkg import name`` reaches the shim through
        ``importlib._bootstrap``; a naive ``stacklevel`` attributes the
        warning to ``<frozen importlib._bootstrap>`` or ``sys:1``.
        ``warn_deprecated`` must pin it to the caller's file and line.
        """
        source = f"from {package} import {name}\n"
        scope: dict = {}
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            exec(compile(source, __file__, "exec"), scope)  # noqa: S102
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert deprecations, f"{package}.{name} did not warn"
        for warning in deprecations:
            assert warning.filename == __file__, (
                f"warning attributed to {warning.filename}:{warning.lineno},"
                f" expected {__file__}"
            )
            assert warning.lineno == 1


class TestNoShimImportsInRepo:
    """In-repo code must import engine modules or repro.api, not shims."""

    def _shim_imports(self, path: Path) -> list[str]:
        tree = ast.parse(path.read_text(), filename=str(path))
        hits = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ImportFrom) or node.module is None:
                continue
            for alias in node.names:
                if SHIMMED.get(alias.name) == node.module:
                    hits.append(f"{path}: from {node.module} import {alias.name}")
        return hits

    @pytest.mark.parametrize("tree", ["src", "examples", "benchmarks", "tests"])
    def test_no_deprecated_import_paths(self, tree):
        hits = []
        for path in (REPO_ROOT / tree).rglob("*.py"):
            hits.extend(self._shim_imports(path))
        assert not hits, "deprecated import paths:\n" + "\n".join(hits)
