"""The adversarial stress corpus and its degradation contract."""

from repro.analysis.budget import ResourceBudget
from repro.analysis.tdat import analyze_pcap
from repro.faults.fuzz import run_fuzz
from repro.faults.stress import (
    ALLOWED_DEGRADATION_KINDS,
    connection_flood,
    idle_flows,
    main,
    pathological_reorder,
    run_stress,
    write_stress_pcap,
)
from repro.wire.pcap import PcapReader


def _timestamps(records):
    return [record.timestamp_us for record in records]


class TestGenerators:
    def test_flood_is_sorted_and_deterministic(self):
        first = list(connection_flood(connections=40))
        second = list(connection_flood(connections=40))
        assert _timestamps(first) == sorted(_timestamps(first))
        assert [r.data for r in first] == [r.data for r in second]
        # handshake(3) + data/ack pairs(4) + close(3) per connection
        assert len(first) == 40 * 10

    def test_flood_holds_every_flow_open_at_once(self):
        records = list(connection_flood(connections=30))
        report = analyze_pcap(
            records, budget=ResourceBudget(max_live_connections=60)
        )
        assert report.degradation.peak_live_connections == 30

    def test_idle_flows_never_close(self):
        records = list(idle_flows(connections=20))
        report = analyze_pcap(records, streaming=True)
        # No FIN/RST anywhere: every flow survives to the EOF drain.
        assert len(report) == 20
        from repro.wire.tcpw import FIN, RST

        for record in records:
            flags = record.data[14 + 20 + 13]
            assert not flags & (FIN | RST)

    def test_reorder_is_one_messy_connection(self):
        records = list(pathological_reorder(segments=120, seed=3))
        assert _timestamps(records) == sorted(_timestamps(records))
        report = analyze_pcap(records)
        assert len(report) == 1
        assert list(pathological_reorder(segments=120, seed=3))[5].data == records[5].data

    def test_write_stress_pcap_roundtrips(self, tmp_path):
        path = tmp_path / "flood.pcap"
        count = write_stress_pcap(
            path, connection_flood(connections=5)
        )
        assert count == 50
        with PcapReader(str(path)) as reader:
            assert sum(1 for _ in reader) == 50


class TestDegradationContract:
    def test_corpus_passes_the_contract(self):
        report = run_stress(connections=200)
        assert report.ok, report.summary()
        assert {case.name for case in report.cases} == {
            "flood-tight", "flood-ample", "idle-tight", "reorder-cap"
        }

    def test_allowed_kinds_are_all_registered(self):
        from repro.core.health import ISSUE_KINDS

        assert ALLOWED_DEGRADATION_KINDS <= set(ISSUE_KINDS)

    def test_fuzz_campaign_folds_in_the_stress_corpus(self):
        report = run_fuzz(seeds=2, stress=True, stress_connections=120)
        assert report.stress is not None
        assert report.stress.ok
        assert report.ok
        assert "stress:" in report.summary()

    def test_fuzz_without_stress_skips_it(self):
        report = run_fuzz(seeds=1)
        assert report.stress is None


class TestRssGateDriver:
    def test_bounded_run_reports_degradation(self, capsys):
        code = main([
            "--flood", "120", "--max-live-connections", "16", "--json",
        ])
        assert code == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["degradation"]["degraded"] is True
        assert payload["degradation"]["peak_live_connections"] <= 16
        assert payload["peak_rss_mb"] > 0

    def test_ceiling_breach_fails(self, capsys):
        # Any real process dwarfs a 1 MiB ceiling: the gate must bite.
        code = main([
            "--flood", "40", "--max-live-connections", "8",
            "--rss-ceiling-mb", "1",
        ])
        assert code == 1
        assert "exceeds ceiling" in capsys.readouterr().err

    def test_unmet_floor_fails(self, capsys):
        code = main(["--flood", "40", "--rss-floor-mb", "100000"])
        assert code == 1
        assert "did not exceed" in capsys.readouterr().err
