"""The robustness acceptance gate: fuzz campaigns over mangled traces."""

import io

import pytest

from repro.analysis.tdat import analyze_pcap
from repro.faults import fuzz
from repro.faults.fuzz import (
    check_clean_invariant,
    clean_trace_bytes,
    run_case,
    run_fuzz,
)


@pytest.fixture(scope="module")
def clean_blob():
    return clean_trace_bytes(table_prefixes=2_000, duration_s=60)


class TestCleanInvariant:
    def test_clean_trace_has_empty_health(self, clean_blob):
        report = analyze_pcap(io.BytesIO(clean_blob))
        assert report.health.ok
        assert report.health.issues == []
        assert len(report) == 1

    def test_factors_match_strict_pipeline(self, clean_blob):
        """Tolerant ingest of a clean trace must not perturb the science."""
        ok, detail = check_clean_invariant(clean_blob)
        assert ok, detail


class TestRunCase:
    def test_case_is_replayable(self, clean_blob):
        a = run_case(clean_blob, seed=123)
        b = run_case(clean_blob, seed=123)
        assert (a.ops, a.mangled_bytes, a.connections, a.issues) == (
            b.ops, b.mangled_bytes, b.connections, b.issues
        )

    def test_case_records_plan(self, clean_blob):
        case = run_case(clean_blob, seed=5)
        assert case.ops
        assert case.mangled_bytes > 0
        assert not case.crashed


class TestCampaign:
    def test_fuzz_invariant_200_seeds(self, clean_blob):
        """The PR's acceptance criterion: 200 seeded mangled traces run
        the T-DAT pipeline end-to-end with zero uncaught exceptions,
        each accounted by a TraceHealth report."""
        report = run_fuzz(seeds=200, table_prefixes=2_000, duration_s=60)
        assert report.crashes == [], report.summary()
        assert report.clean_ok, report.clean_detail
        assert len(report.cases) == 200
        # Mangled traces must be *accounted*, not silently swallowed:
        # the campaign as a whole records plenty of ingest issues.
        assert sum(case.issues for case in report.cases) > 100
        assert any(case.issues > 0 for case in report.cases[:20])

    def test_summary_mentions_outcome(self, clean_blob):
        report = run_fuzz(seeds=3)
        text = report.summary()
        assert "3 mangled trace(s)" in text
        assert "0 crash(es)" in text
        assert "clean-trace invariant ok" in text

    def test_main_smoke(self, capsys):
        rc = fuzz.main(["--seeds", "5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "5 mangled trace(s), 0 crash(es)" in out
