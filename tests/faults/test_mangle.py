"""Tests for the seeded pcap mangler: determinism and operator behavior."""

import struct

from repro.bgp.messages import MARKER
from repro.faults.mangle import (
    OPERATORS,
    mangle,
    random_plan,
    split_pcap,
)
from repro.wire.pcap import (
    GLOBAL_HEADER,
    RECORD_HEADER,
    PcapRecord,
    records_to_bytes,
)

import random


def make_blob(count: int = 12) -> bytes:
    """A small clean pcap whose payloads contain BGP markers."""
    records = []
    for i in range(count):
        payload = (
            bytes(range(40))  # stand-in for eth/ip/tcp headers
            + MARKER
            + struct.pack("!HB", 19, 4)  # KEEPALIVE framing
            + bytes([i]) * 20
        )
        records.append(PcapRecord(timestamp_us=1_000_000 + i * 250, data=payload))
    return records_to_bytes(records)


class TestSplitPcap:
    def test_join_is_identity(self):
        blob = make_blob()
        split = split_pcap(blob)
        assert split.join() == blob
        assert len(split.records) == 12
        assert split.trailer == b""

    def test_short_blob_all_trailer(self):
        split = split_pcap(b"tiny")
        assert split.header == b""
        assert split.records == []
        assert split.join() == b"tiny"

    def test_overrunning_record_becomes_trailer(self):
        blob = make_blob(2)
        cut = blob[: len(blob) - 5]
        split = split_pcap(cut)
        assert len(split.records) == 1
        assert split.join() == cut


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        blob = make_blob()
        plan = sorted(OPERATORS)
        assert mangle(blob, plan, seed=41) == mangle(blob, plan, seed=41)

    def test_different_seed_different_bytes(self):
        blob = make_blob()
        plan = ["corrupt-payload", "drop-records"]
        outputs = {mangle(blob, plan, seed=s) for s in range(8)}
        assert len(outputs) > 1

    def test_random_plan_is_deterministic(self):
        assert random_plan(random.Random(3)) == random_plan(random.Random(3))
        plans = {tuple(random_plan(random.Random(s))) for s in range(20)}
        assert len(plans) > 1
        for plan in plans:
            assert all(name in OPERATORS for name in plan)

    def test_every_operator_alone_is_deterministic(self):
        blob = make_blob()
        for name in OPERATORS:
            assert mangle(blob, [name], seed=9) == mangle(blob, [name], seed=9)


class TestOperators:
    def test_truncate_shortens(self):
        blob = make_blob()
        out = mangle(blob, ["truncate"], seed=1)
        assert len(out) < len(blob)
        assert out == blob[: len(out)]

    def test_drop_records_removes_some(self):
        blob = make_blob()
        out = mangle(blob, ["drop-records"], seed=1)
        assert len(split_pcap(out).records) < 12

    def test_duplicate_records_repeats_some(self):
        blob = make_blob(40)
        out = mangle(blob, ["duplicate-records"], seed=1)
        assert len(split_pcap(out).records) > 40

    def test_reorder_preserves_multiset(self):
        blob = make_blob()
        out = mangle(blob, ["reorder-records"], seed=1)
        assert out != blob
        assert sorted(split_pcap(out).records) == sorted(split_pcap(blob).records)

    def test_regress_timestamps_moves_backwards(self):
        blob = make_blob()
        out = mangle(blob, ["regress-timestamps"], seed=1)

        def stamps(data):
            return [
                struct.unpack_from("<I", r, 0)[0]
                for r in split_pcap(data).records
            ]

        before, after = stamps(blob), stamps(out)
        assert len(before) == len(after)
        assert any(a < b for a, b in zip(after, before))
        assert all(a <= b for a, b in zip(after, before))

    def test_slice_frames_keeps_wire_length_honest(self):
        blob = make_blob()
        out = mangle(blob, ["slice-frames"], seed=1)
        sliced = 0
        for record in split_pcap(out).records:
            _, _, incl_len, orig_len = struct.unpack_from("<IIII", record, 0)
            assert len(record) == RECORD_HEADER.size + incl_len
            assert orig_len >= incl_len
            if incl_len < orig_len:
                sliced += 1
        assert sliced > 0

    def test_flip_bgp_touches_only_payload(self):
        blob = make_blob()
        out = mangle(blob, ["flip-bgp"], seed=1)
        assert out != blob
        assert len(out) == len(blob)
        # Global and record headers are untouched: damage is in-stream.
        assert out[: GLOBAL_HEADER.size] == blob[: GLOBAL_HEADER.size]
        for before, after in zip(split_pcap(blob).records, split_pcap(out).records):
            assert before[: RECORD_HEADER.size] == after[: RECORD_HEADER.size]

    def test_corrupt_record_header_changes_header_bytes(self):
        blob = make_blob()
        out = mangle(blob, ["corrupt-record-header"], seed=2)
        assert out != blob
        assert len(out) == len(blob)

    def test_operators_tolerate_garbage_input(self):
        # Operators must compose in any order, even over already-ruined
        # bytes: none may raise on structurally hopeless input.
        for garbage in (b"", b"\x00" * 10, b"\xff" * 100, make_blob()[:20]):
            for name in OPERATORS:
                mangle(garbage, [name], seed=5)

    def test_full_stack_composition(self):
        blob = make_blob(30)
        out = mangle(blob, sorted(OPERATORS), seed=11)
        assert isinstance(out, bytes)
