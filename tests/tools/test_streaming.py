"""Tests for the online (streaming) pcap2bgp reconstruction."""

import random

import pytest

from repro.bgp.messages import UpdateMessage
from repro.bgp.table import generate_table
from repro.core.units import seconds
from repro.netsim.link import WindowLoss
from repro.netsim.simulator import Simulator
from repro.tools.pcap2bgp import StreamingPcap2Bgp, pcap_to_bgp
from repro.workloads.scenarios import MonitoringSetup, RouterParams


def make_capture(loss=False, table_size=3_000, seed=65):
    sim = Simulator()
    setup = MonitoringSetup(sim)
    table = generate_table(table_size, random.Random(seed))
    setup.add_router(
        RouterParams(
            name="r1",
            ip="10.65.0.1",
            table=table,
            downstream_loss=(
                WindowLoss([(seconds(0.03), seconds(0.3))]) if loss else None
            ),
        )
    )
    setup.start()
    sim.run(until_us=seconds(120))
    return setup.sniffer.sorted_records(), table


class TestStreaming:
    def test_streaming_matches_offline(self):
        records, table = make_capture()
        stream = StreamingPcap2Bgp()
        for record in records:
            stream.feed(record)
        offline = pcap_to_bgp(records)
        offline_updates = sum(
            len(result.updates()) for result in offline.values()
        )
        streamed_updates = sum(
            1 for _, timed in stream.messages
            if isinstance(timed.message, UpdateMessage)
        )
        assert streamed_updates == offline_updates == len(table.to_updates())

    def test_streaming_handles_retransmissions(self):
        records, table = make_capture(loss=True)
        stream = StreamingPcap2Bgp()
        for record in records:
            stream.feed(record)
        updates = [
            timed for _, timed in stream.messages
            if isinstance(timed.message, UpdateMessage)
        ]
        assert len(updates) == len(table.to_updates())
        stamps = [u.timestamp_us for u in updates]
        assert stamps == sorted(stamps)

    def test_callback_invoked_per_message(self):
        records, table = make_capture(table_size=500)
        seen = []
        stream = StreamingPcap2Bgp(on_message=lambda flow, t: seen.append(t))
        for record in records:
            stream.feed(record)
        assert len(seen) == len(stream.messages)
        assert len(seen) > 0

    def test_incremental_emission_is_prompt(self):
        """Messages surface as soon as their bytes are contiguous, not
        at the end of the capture."""
        records, table = make_capture(table_size=2_000)
        stream = StreamingPcap2Bgp()
        first_emit_index = None
        for index, record in enumerate(records):
            if stream.feed(record) and first_emit_index is None:
                first_emit_index = index
        assert first_emit_index is not None
        assert first_emit_index < len(records) // 2

    def test_garbage_frames_counted(self):
        from repro.wire.pcap import PcapRecord

        stream = StreamingPcap2Bgp()
        stream.feed(PcapRecord(timestamp_us=0, data=b"\x01" * 30))
        assert stream.skipped_frames == 1
        assert stream.messages == []

    def test_flow_tracking(self):
        records, _ = make_capture(table_size=500)
        stream = StreamingPcap2Bgp()
        for record in records:
            stream.feed(record)
        # Data direction plus the collector's OPEN/KEEPALIVE direction.
        assert len(stream.flows()) == 2
