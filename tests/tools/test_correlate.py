"""Tests for BGP-message-to-packet correlation (the Table III machinery)."""

import random

import pytest

from repro.analysis.profile import Trace
from repro.bgp.messages import UpdateMessage
from repro.bgp.table import generate_table
from repro.core.units import seconds
from repro.netsim.link import WindowLoss
from repro.netsim.simulator import Simulator
from repro.tools.correlate import correlate_messages, delayed_updates
from repro.workloads.scenarios import MonitoringSetup, RouterParams


def make_connection(loss=False, table_size=4_000, seed=66):
    sim = Simulator()
    setup = MonitoringSetup(sim)
    table = generate_table(table_size, random.Random(seed))
    setup.add_router(
        RouterParams(
            name="r1",
            ip="10.66.0.1",
            table=table,
            downstream_loss=(
                WindowLoss([(seconds(0.03), seconds(0.8))]) if loss else None
            ),
        )
    )
    setup.start()
    sim.run(until_us=seconds(120))
    trace = Trace.from_pcap(setup.sniffer.sorted_records())
    return next(iter(trace)), table


class TestCorrelation:
    def test_every_message_correlated(self):
        connection, table = make_connection()
        correlated = correlate_messages(connection)
        updates = [
            c for c in correlated if isinstance(c.message, UpdateMessage)
        ]
        assert len(updates) == len(table.to_updates())

    def test_byte_ranges_are_contiguous(self):
        connection, _ = make_connection()
        correlated = correlate_messages(connection)
        for before, after in zip(correlated, correlated[1:]):
            assert after.start_seq == before.end_seq
        assert correlated[0].start_seq == 0
        assert all(c.wire_length >= 19 for c in correlated)

    def test_clean_transfer_has_no_delays(self):
        connection, _ = make_connection()
        correlated = correlate_messages(connection)
        assert not any(c.retransmitted for c in correlated)
        # Delivery (the ACK of the last byte) trails the first attempt
        # by at most an RTT plus the delayed-ACK timer.
        assert all(c.delay_us < 150_000 for c in correlated)

    def test_lossy_transfer_shows_table3_delays(self):
        connection, _ = make_connection(loss=True, table_size=30_000)
        delayed = delayed_updates(connection, min_delay_us=300_000)
        # The blackout stalls part of the stream: some updates arrive
        # far later than their first transmission (paper: 1-13s).
        assert delayed
        assert all(c.retransmitted for c in delayed)
        assert max(c.delay_us for c in delayed) > 400_000

    def test_delivery_never_precedes_first_attempt(self):
        connection, _ = make_connection(loss=True, table_size=20_000)
        for c in correlate_messages(connection):
            assert c.delivered_us >= c.first_attempt_us

    def test_ordering_by_delivery(self):
        connection, _ = make_connection(loss=True, table_size=20_000)
        stamps = [c.delivered_us for c in correlate_messages(connection)]
        assert stamps == sorted(stamps)
