"""Tests for pcap2bgp, tcptrace-lite, bgplot and the CLIs."""

import random

import pytest

from repro.analysis.profile import Trace
from repro.analysis.tdat import analyze_pcap
from repro.bgp.messages import UpdateMessage
from repro.bgp.mrt import read_mrt
from repro.bgp.table import generate_table
from repro.core.units import seconds
from repro.netsim.link import WindowLoss
from repro.netsim.simulator import Simulator
from repro.tools import bgplot, cli, pcap2bgp, tcptrace_lite
from repro.workloads.scenarios import MonitoringSetup, RouterParams


@pytest.fixture(scope="module")
def clean_capture(tmp_path_factory):
    sim = Simulator()
    setup = MonitoringSetup(sim)
    table = generate_table(2000, random.Random(31))
    setup.add_router(RouterParams(name="r1", ip="10.1.0.1", table=table))
    setup.start()
    sim.run(until_us=seconds(60))
    path = tmp_path_factory.mktemp("cap") / "clean.pcap"
    setup.sniffer.write(path)
    return {
        "path": path,
        "records": setup.sniffer.sorted_records(),
        "table": table,
        "archived": setup.collector.archive,
    }


@pytest.fixture(scope="module")
def lossy_capture(tmp_path_factory):
    sim = Simulator()
    setup = MonitoringSetup(sim)
    table = generate_table(4000, random.Random(32))
    setup.add_router(
        RouterParams(
            name="r1",
            ip="10.1.0.1",
            table=table,
            downstream_loss=WindowLoss([(30_000, 150_000)]),
        )
    )
    setup.start()
    sim.run(until_us=seconds(120))
    path = tmp_path_factory.mktemp("cap") / "lossy.pcap"
    setup.sniffer.write(path)
    return {"path": path, "records": setup.sniffer.sorted_records(), "table": table}


class TestPcap2Bgp:
    def test_reconstructs_all_updates(self, clean_capture):
        results = pcap2bgp.pcap_to_bgp(clean_capture["records"])
        (result,) = results.values()
        expected = len(clean_capture["table"].to_updates())
        assert len(result.updates()) == expected
        assert result.missing_bytes == 0
        assert result.decode_error is None

    def test_reconstruction_handles_retransmissions(self, lossy_capture):
        results = pcap2bgp.pcap_to_bgp(lossy_capture["records"])
        (result,) = results.values()
        expected = len(lossy_capture["table"].to_updates())
        assert len(result.updates()) == expected
        assert result.decode_error is None

    def test_message_timestamps_monotone(self, clean_capture):
        (result,) = pcap2bgp.pcap_to_bgp(clean_capture["records"]).values()
        stamps = [m.timestamp_us for m in result.messages]
        assert stamps == sorted(stamps)

    def test_matches_collector_archive(self, clean_capture):
        """pcap2bgp must recover exactly what the Quagga archive holds."""
        (result,) = pcap2bgp.pcap_to_bgp(clean_capture["records"]).values()
        reconstructed = [m.message for m in result.updates()]
        archived = [
            r.message
            for r in clean_capture["archived"]
            if isinstance(r.message, UpdateMessage)
        ]
        assert reconstructed == archived

    def test_pcap_to_mrt_roundtrip(self, clean_capture, tmp_path):
        out = tmp_path / "out.mrt"
        count = pcap2bgp.pcap_to_mrt(clean_capture["path"], out, local_as=65000)
        records = list(read_mrt(out))
        assert len(records) == count > 0
        assert all(r.local_as == 65000 for r in records)


class TestTcptraceLite:
    def test_summary_row(self, clean_capture):
        rows = tcptrace_lite.summarize(clean_capture["path"])
        assert len(rows) == 1
        row = rows[0]
        assert row.sender_ip == "10.1.0.1"
        assert row.data_bytes > 8_000
        assert row.retransmissions == 0
        assert row.saw_syn

    def test_lossy_capture_counts_retransmissions(self, lossy_capture):
        (row,) = tcptrace_lite.summarize(lossy_capture["path"])
        assert row.retransmissions > 0
        assert row.downstream_losses > 0

    def test_format_report(self, clean_capture):
        rows = tcptrace_lite.summarize(clean_capture["path"])
        text = tcptrace_lite.format_report(rows)
        assert "1 TCP connection(s)" in text
        assert "10.1.0.1" in text


class TestBgplot:
    def test_render_panel(self, clean_capture):
        report = analyze_pcap(clean_capture["records"])
        analysis = next(iter(report))
        panel = bgplot.render_panel(analysis.series, width=60)
        assert "Transmission" in panel
        assert "█" in panel

    def test_render_analysis_mentions_factors(self, clean_capture):
        report = analyze_pcap(clean_capture["records"])
        text = bgplot.render_analysis(next(iter(report)))
        assert "delay ratios" in text
        assert "major factors" in text

    def test_csv_export(self, clean_capture):
        report = analyze_pcap(clean_capture["records"])
        csv = bgplot.series_to_csv(next(iter(report)).series)
        lines = csv.splitlines()
        assert lines[0] == "series,start_us,end_us,duration_us"
        assert len(lines) > 3

    def test_sequence_points_csv(self, clean_capture):
        report = analyze_pcap(clean_capture["records"])
        csv = bgplot.sequence_points_csv(next(iter(report)))
        assert csv.splitlines()[0] == "kind,time_us,relative_seq"
        assert any(line.startswith("data,") for line in csv.splitlines())
        assert any(line.startswith("ack,") for line in csv.splitlines())

    def test_square_wave_resolution(self):
        from repro.core.events import EventSeries

        series = EventSeries("X", [(0, 50)])
        wave = bgplot.render_square_wave(series, 0, 100, width=10)
        assert wave == "█████·····"

    def test_time_sequence_plot(self, lossy_capture):
        report = analyze_pcap(lossy_capture["records"], min_data_packets=2)
        analysis = next(iter(report))
        plot = bgplot.render_time_sequence(
            analysis, width=60, height=12, window=(0, seconds(2))
        )
        lines = plot.splitlines()
        assert len(lines) == 13  # header + 12 rows
        body = "\n".join(lines[1:])
        assert "." in body  # data points
        assert "R" in body  # the injected retransmissions
        assert "a" in body  # the ACK frontier

    def test_time_sequence_empty(self):
        from repro.analysis.tdat import analyze_connection
        from repro.analysis.profile import Connection

        # A connection object with no data renders a placeholder.
        from tests.analysis.helpers import TraceBuilder

        conn = TraceBuilder().handshake().data(20_000, 0, 100).ack(
            21_000, 100
        ).build()
        analysis = analyze_connection(conn)
        plot = bgplot.render_time_sequence(analysis, width=20, height=5)
        assert "time-sequence" in plot


class TestClis:
    def test_tdat_cli(self, clean_capture, capsys):
        rc = cli.tdat_main([str(clean_capture["path"])])
        out = capsys.readouterr().out
        assert rc == 0
        assert "connection" in out
        assert "major factors" in out

    def test_tdat_cli_empty_trace(self, tmp_path, capsys):
        from repro.wire.pcap import write_pcap

        empty = tmp_path / "empty.pcap"
        write_pcap(empty, [])
        rc = cli.tdat_main([str(empty)])
        assert rc == 1

    def test_pcap2bgp_cli(self, clean_capture, tmp_path, capsys):
        out_path = tmp_path / "cli.mrt"
        rc = cli.pcap2bgp_main([str(clean_capture["path"]), str(out_path)])
        assert rc == 0
        assert out_path.exists()
        assert "MRT records" in capsys.readouterr().out

    def test_tcptrace_cli(self, clean_capture, capsys):
        rc = cli.tcptrace_main([str(clean_capture["path"])])
        assert rc == 0
        assert "TCP connection" in capsys.readouterr().out

    def test_bgplot_cli_csv(self, clean_capture, capsys):
        rc = cli.bgplot_main([str(clean_capture["path"]), "--csv"])
        assert rc == 0
        assert "series,start_us" in capsys.readouterr().out

    def test_tdat_cli_json(self, clean_capture, capsys):
        import json

        rc = cli.tdat_main([str(clean_capture["path"]), "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["connections"]) == 1
        entry = payload["connections"][0]
        assert entry["sender"] == "10.1.0.1"
        assert set(entry["factors"]["groups"]) == {"sender", "receiver", "network"}
        assert "timer_gaps" in entry["detectors"]
        assert entry["profile"]["mss"] == 1400
        assert payload["health"]["ok"] is True
        assert payload["health"]["issue_count"] == 0
