"""Tests for prefix-preserving trace anonymization."""

import io
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.tdat import analyze_pcap
from repro.bgp.table import generate_table
from repro.core.units import seconds
from repro.netsim.simulator import Simulator
from repro.tools.anonymize import (
    PrefixPreservingAnonymizer,
    anonymize_pcap,
    anonymize_record,
)
from repro.wire import frames
from repro.wire.pcap import read_pcap, records_to_bytes
from repro.workloads.scenarios import MonitoringSetup, RouterParams

ips = st.tuples(*[st.integers(0, 255)] * 4).map(
    lambda t: ".".join(map(str, t))
)


def common_prefix_len(a: str, b: str) -> int:
    from repro.wire.ip import ip_to_bytes

    x = int.from_bytes(ip_to_bytes(a), "big")
    y = int.from_bytes(ip_to_bytes(b), "big")
    for i in range(32):
        if (x >> (31 - i)) & 1 != (y >> (31 - i)) & 1:
            return i
    return 32


class TestAnonymizer:
    def test_deterministic_per_key(self):
        a = PrefixPreservingAnonymizer(b"k1")
        b = PrefixPreservingAnonymizer(b"k1")
        assert a.anonymize_ip("10.1.2.3") == b.anonymize_ip("10.1.2.3")

    def test_different_keys_differ(self):
        a = PrefixPreservingAnonymizer(b"k1")
        b = PrefixPreservingAnonymizer(b"k2")
        assert a.anonymize_ip("10.1.2.3") != b.anonymize_ip("10.1.2.3")

    def test_identity_is_not_preserved(self):
        a = PrefixPreservingAnonymizer(b"secret")
        assert a.anonymize_ip("192.0.2.1") != "192.0.2.1"

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            PrefixPreservingAnonymizer(b"")

    @given(ips, ips)
    def test_prefix_preservation_property(self, ip_a, ip_b):
        anon = PrefixPreservingAnonymizer(b"prop-key")
        before = common_prefix_len(ip_a, ip_b)
        after = common_prefix_len(
            anon.anonymize_ip(ip_a), anon.anonymize_ip(ip_b)
        )
        assert before == after

    @given(ips)
    def test_mapping_is_injective_on_samples(self, address):
        anon = PrefixPreservingAnonymizer(b"inj-key")
        out = anon.anonymize_ip(address)
        # Full prefix preservation implies a bijection; spot-check that
        # re-anonymizing yields the cached identical result.
        assert anon.anonymize_ip(address) == out


@pytest.fixture(scope="module")
def capture():
    sim = Simulator()
    setup = MonitoringSetup(sim)
    table = generate_table(3_000, random.Random(61))
    setup.add_router(RouterParams(name="r1", ip="10.1.0.1", table=table))
    setup.start()
    sim.run(until_us=seconds(60))
    return setup.sniffer.sorted_records()


class TestPcapAnonymization:
    def test_addresses_rewritten_consistently(self, capture):
        src = io.BytesIO(records_to_bytes(capture))
        dst = io.BytesIO()
        count = anonymize_pcap(src, dst, key=b"share-key")
        assert count == len(capture)
        dst.seek(0)
        records = read_pcap(dst)
        addresses = set()
        for record in records:
            parsed = frames.parse_frame(record.data, verify_checksums=True)
            addresses.update((parsed.src_ip, parsed.dst_ip))
        assert "10.1.0.1" not in addresses
        assert "10.255.0.1" not in addresses
        assert len(addresses) == 2  # one consistent mapping per host

    def test_timing_and_lengths_preserved(self, capture):
        src = io.BytesIO(records_to_bytes(capture))
        dst = io.BytesIO()
        anonymize_pcap(src, dst, key=b"share-key", strip_payload=True)
        dst.seek(0)
        records = read_pcap(dst)
        for before, after in zip(capture, records):
            assert before.timestamp_us == after.timestamp_us
            assert len(before.data) == len(after.data)

    def test_payload_stripping_zeroes_content(self, capture):
        anonymizer = PrefixPreservingAnonymizer(b"zero")
        data_records = [
            r for r in capture
            if frames.parse_frame(r.data).tcp.payload
        ]
        record = anonymize_record(data_records[0], anonymizer, strip_payload=True)
        parsed = frames.parse_frame(record.data, verify_checksums=True)
        assert parsed.tcp.payload == bytes(len(parsed.tcp.payload))

    def test_analysis_survives_anonymization(self, capture):
        """Factor group ratios match on the stripped, anonymized trace."""
        original = analyze_pcap(capture, min_data_packets=2)
        src = io.BytesIO(records_to_bytes(capture))
        dst = io.BytesIO()
        anonymize_pcap(src, dst, key=b"a-key", strip_payload=True)
        dst.seek(0)
        anonymized = analyze_pcap(read_pcap(dst), min_data_packets=2)
        (a,) = list(original)
        (b,) = list(anonymized)
        for x, y in zip(a.factors.group_vector, b.factors.group_vector):
            assert x == pytest.approx(y, abs=0.05)
        assert (
            a.connection.profile.total_data_bytes
            == b.connection.profile.total_data_bytes
        )
        assert a.connection.profile.rtt_us == b.connection.profile.rtt_us
