"""Tests for the campaign report generator."""

import pytest

from repro.tools.report import (
    dataset_summary,
    detector_findings,
    duration_statistics,
    factor_distribution,
    render_markdown,
)
from repro.workloads.campaign import isp_quagga_config, run_campaign


@pytest.fixture(scope="module")
def campaign():
    return run_campaign(isp_quagga_config(transfers=8))


class TestReportPieces:
    def test_dataset_summary(self, campaign):
        (row,) = dataset_summary([campaign])
        assert row["trace"] == "ISP_A-Quagga"
        assert row["transfers"] == len(campaign.records)
        assert row["packets"] > 0

    def test_duration_statistics(self, campaign):
        stats = duration_statistics(campaign)
        assert stats["count"] == len(campaign.records)
        assert stats["min_s"] <= stats["median_s"] <= stats["max_s"]

    def test_factor_distribution_accounts_everything(self, campaign):
        dist = factor_distribution(campaign)
        classified = sum(
            1 for r in campaign.records if r.factors.major_groups()
        )
        assert dist["unknown"] == len(campaign.records) - classified
        assert sum(dist["groups"].values()) >= classified

    def test_detector_findings(self, campaign):
        findings = detector_findings(campaign)
        assert set(findings) == {
            "timer_gaps", "consecutive_losses", "zero_ack_bug",
        }
        for row in findings.values():
            assert row["count"] >= 0
            assert row["avg_delay_s"] >= 0.0


class TestMarkdown:
    def test_render_contains_all_sections(self, campaign):
        text = render_markdown([campaign])
        assert "# BGP table-transfer delay survey" in text
        assert "## Datasets" in text
        assert "## Transfer durations" in text
        assert "## Major delay factors" in text
        assert "## Detected transport problems" in text
        assert "ISP_A-Quagga" in text

    def test_tables_are_well_formed(self, campaign):
        text = render_markdown([campaign])
        for line in text.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

    def test_empty_campaign_renders(self):
        from repro.workloads.campaign import CampaignResult

        empty = CampaignResult(name="empty", collector_kind="vendor")
        text = render_markdown([empty])
        assert "empty" in text
