"""Error handling for every CLI entry point: one-line errors, exit codes.

Each of the five mains must turn operational mishaps — missing files,
non-pcap input, damaged captures — into a single diagnostic line on
stderr and a nonzero exit status, never a traceback.
"""

import struct

import pytest

from repro.faults.fuzz import clean_trace_bytes
from repro.tools import cli
from repro.wire.pcap import GLOBAL_HEADER, RECORD_HEADER

MISSING = "/nonexistent/trace.pcap"

ENTRY_POINTS = [
    ("tdat", cli.tdat_main, [MISSING]),
    ("pcap2bgp", cli.pcap2bgp_main, [MISSING, "/tmp/out.mrt"]),
    ("tcptrace", cli.tcptrace_main, [MISSING]),
    ("pcap-anonymize", cli.anonymize_main, [MISSING, "/tmp/out.pcap", "--key", "k"]),
    ("bgplot", cli.bgplot_main, [MISSING]),
]


@pytest.fixture(scope="module")
def clean_pcap(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "clean.pcap"
    path.write_bytes(clean_trace_bytes(table_prefixes=2_000, duration_s=60))
    return path


@pytest.fixture(scope="module")
def damaged_pcap(tmp_path_factory):
    """A clean capture with one record header smashed mid-file."""
    blob = bytearray(clean_trace_bytes(table_prefixes=2_000, duration_s=60))
    # Walk to the third record and make its header implausible.
    i = GLOBAL_HEADER.size
    for _ in range(2):
        incl_len = struct.unpack_from("<I", blob, i + 8)[0]
        i += RECORD_HEADER.size + incl_len
    struct.pack_into("<I", blob, i + 8, 0xFFFFFFFF)
    path = tmp_path_factory.mktemp("cli") / "damaged.pcap"
    path.write_bytes(bytes(blob))
    return path


class TestMissingFile:
    @pytest.mark.parametrize("prog,main,argv", ENTRY_POINTS,
                             ids=[e[0] for e in ENTRY_POINTS])
    def test_missing_file_one_line_error(self, prog, main, argv, capsys):
        rc = main(argv)
        err = capsys.readouterr().err
        assert rc == cli.EXIT_ERROR
        assert err.count("\n") == 1
        assert "error: no such file" in err
        assert "Traceback" not in err


class TestBadInput:
    def test_tdat_directory_argument(self, tmp_path, capsys):
        rc = cli.tdat_main([str(tmp_path)])
        err = capsys.readouterr().err
        assert rc == cli.EXIT_ERROR
        assert "is a directory" in err

    def test_tdat_strict_rejects_junk(self, tmp_path, capsys):
        junk = tmp_path / "junk.pcap"
        junk.write_bytes(b"this is not a pcap file at all, not even close")
        rc = cli.tdat_main([str(junk), "--strict"])
        err = capsys.readouterr().err
        assert rc == cli.EXIT_ERROR
        assert "unrecognized pcap magic" in err
        assert "Traceback" not in err

    def test_tdat_tolerant_junk_is_empty_not_fatal(self, tmp_path, capsys):
        junk = tmp_path / "junk.pcap"
        junk.write_bytes(b"this is not a pcap file at all, not even close")
        rc = cli.tdat_main([str(junk)])
        err = capsys.readouterr().err
        assert rc == cli.EXIT_NOTHING
        assert "bad-magic" in err
        assert "no analyzable TCP connections" in err

    def test_tcptrace_rejects_junk(self, tmp_path, capsys):
        junk = tmp_path / "junk.pcap"
        junk.write_bytes(b"\x00" * 64)
        rc = cli.tcptrace_main([str(junk)])
        err = capsys.readouterr().err
        assert rc == cli.EXIT_ERROR
        assert err.count("\n") == 1

    def test_pcap2bgp_rejects_junk(self, tmp_path, capsys):
        junk = tmp_path / "junk.pcap"
        junk.write_bytes(b"\x00" * 64)
        rc = cli.pcap2bgp_main([str(junk), str(tmp_path / "out.mrt")])
        assert rc == cli.EXIT_ERROR

    def test_anonymize_rejects_junk(self, tmp_path, capsys):
        junk = tmp_path / "junk.pcap"
        junk.write_bytes(b"\x00" * 64)
        rc = cli.anonymize_main(
            [str(junk), str(tmp_path / "out.pcap"), "--key", "k"]
        )
        assert rc == cli.EXIT_ERROR


class TestDamagedCapture:
    def test_tdat_reports_issues_with_exit_3(self, damaged_pcap, capsys):
        rc = cli.tdat_main([str(damaged_pcap)])
        captured = capsys.readouterr()
        assert rc == cli.EXIT_ISSUES
        assert "major factors" in captured.out  # analysis still produced
        assert "trace health:" in captured.err
        assert "bad-record-header" in captured.err

    def test_tdat_json_carries_health(self, damaged_pcap, capsys):
        import json

        rc = cli.tdat_main([str(damaged_pcap), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == cli.EXIT_ISSUES
        assert payload["health"]["ok"] is False
        assert payload["health"]["issue_count"] >= 1
        assert payload["health"]["by_stage"].get("pcap", 0) >= 1
        assert len(payload["connections"]) == 1

    def test_clean_capture_still_exits_zero(self, clean_pcap, capsys):
        rc = cli.tdat_main([str(clean_pcap)])
        capsys.readouterr()
        assert rc == cli.EXIT_OK
