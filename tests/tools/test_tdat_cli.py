"""The unified ``tdat`` command: subcommands, legacy form, exit codes."""

import json

import pytest

from repro.faults.fuzz import clean_trace_bytes
from repro.tools import tdat_cli
from repro.tools.tdat_cli import (
    EXIT_ERROR,
    EXIT_INTERRUPTED,
    EXIT_ISSUES,
    EXIT_NOTHING,
    EXIT_OK,
    main,
)


@pytest.fixture(scope="module")
def clean_pcap(tmp_path_factory):
    path = tmp_path_factory.mktemp("tdat") / "clean.pcap"
    path.write_bytes(clean_trace_bytes(table_prefixes=2_000, duration_s=60))
    return path


class TestAnalyze:
    def test_explicit_subcommand(self, clean_pcap, capsys):
        assert main(["analyze", str(clean_pcap)]) == EXIT_OK
        assert "major factors" in capsys.readouterr().out

    def test_legacy_bare_pcap_still_works(self, clean_pcap, capsys):
        """``tdat trace.pcap`` predates subcommands and must keep working."""
        assert main([str(clean_pcap)]) == EXIT_OK
        assert "major factors" in capsys.readouterr().out

    def test_legacy_flags_without_subcommand(self, clean_pcap, capsys):
        rc = main([str(clean_pcap), "--json", "--workers", "2"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == EXIT_OK
        assert payload["health"]["ok"] is True
        assert len(payload["connections"]) == 1

    def test_streaming_flag_same_output(self, clean_pcap, capsys):
        assert main(["analyze", str(clean_pcap), "--json"]) == EXIT_OK
        buffered = json.loads(capsys.readouterr().out)
        rc = main(["analyze", str(clean_pcap), "--json", "--streaming"])
        streamed = json.loads(capsys.readouterr().out)
        assert rc == EXIT_OK
        assert streamed == buffered

    def test_missing_file_one_line_error(self, capsys):
        rc = main(["analyze", "/nonexistent/trace.pcap"])
        err = capsys.readouterr().err
        assert rc == EXIT_ERROR
        assert err.count("\n") == 1
        assert "error: no such file" in err

    def test_unknown_word_is_treated_as_a_trace_path(self, capsys):
        # Not a subcommand -> legacy form -> analyze a file that isn't there.
        rc = main(["frobnicate"])
        assert rc == EXIT_ERROR
        assert "no such file" in capsys.readouterr().err

    def test_junk_input_is_nothing_to_analyze(self, tmp_path, capsys):
        junk = tmp_path / "junk.pcap"
        junk.write_bytes(b"not a pcap at all")
        assert main(["analyze", str(junk)]) == EXIT_NOTHING


class TestCampaign:
    def test_run_json_with_injected_crash(self, capsys):
        rc = main([
            "campaign", "ISP_A-Quagga",
            "--transfers", "2", "--seed", "5", "--workers", "2",
            "--fail-episode", "0", "--json",
        ])
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        # The injected crash is contained: the sibling transfer and the
        # zero-ack-bug episode completed, the ledger says what was lost.
        assert rc == EXIT_ISSUES
        assert payload["health"]["ok"] is False
        assert payload["health"]["by_kind"].get("transfer-crashed") == 1
        assert payload["records"]
        assert "transfer-crashed" in captured.err

    def test_unknown_campaign_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "no-such-campaign"])
        assert "invalid choice" in capsys.readouterr().err


class TestOtherSubcommands:
    def test_tcptrace(self, clean_pcap, capsys):
        assert main(["tcptrace", str(clean_pcap)]) == EXIT_OK
        assert "conn" in capsys.readouterr().out

    def test_pcap2bgp(self, clean_pcap, tmp_path, capsys):
        out = tmp_path / "out.mrt"
        assert main(["pcap2bgp", str(clean_pcap), str(out)]) == EXIT_OK
        assert out.exists()

    def test_anonymize(self, clean_pcap, tmp_path, capsys):
        out = tmp_path / "anon.pcap"
        rc = main(["anonymize", str(clean_pcap), str(out), "--key", "k"])
        assert rc == EXIT_OK
        assert out.exists()

    def test_fuzz_smoke(self, capsys):
        rc = main(["fuzz", "--seeds", "2", "--table", "500"])
        assert rc == EXIT_OK
        assert "fuzz" in capsys.readouterr().out

    def test_help_lists_subcommands(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for name in tdat_cli.SUBCOMMANDS:
            assert name in out


class TestSupervision:
    def test_retries_recover_injected_crash(self, capsys):
        rc = main([
            "campaign", "ISP_A-Quagga",
            "--transfers", "2", "--seed", "5", "--workers", "2",
            "--fail-episode", "0", "--max-retries", "2", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        # The transient crash was retried away: full record set, the
        # recovery accounted as a benign issue, exit code clean.
        assert rc == EXIT_OK
        assert payload["health"]["by_kind"].get("task-retried") == 1
        assert payload["health"]["by_kind"].get("transfer-crashed") is None

    def test_checkpoint_then_resume_round_trip(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        args = [
            "campaign", "ISP_A-Quagga", "--transfers", "2", "--seed", "5",
            "--checkpoint-dir", str(ckpt), "--json",
        ]
        assert main(args) == EXIT_OK
        first = json.loads(capsys.readouterr().out)
        rc = main(args + ["--resume"])
        resumed = json.loads(capsys.readouterr().out)
        assert rc == EXIT_OK  # campaign-resumed marker is benign
        assert resumed["records"] == first["records"]
        assert resumed["health"]["by_kind"].get("campaign-resumed") == 1

    def test_resume_requires_checkpoint_dir(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "ISP_A-Quagga", "--resume"])
        assert excinfo.value.code == 2
        assert "--resume requires --checkpoint-dir" in capsys.readouterr().err

    def test_resume_with_changed_seed_is_an_error(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        base = ["campaign", "ISP_A-Quagga", "--transfers", "2",
                "--checkpoint-dir", str(ckpt)]
        assert main(base + ["--seed", "5"]) == EXIT_OK
        capsys.readouterr()
        rc = main(base + ["--seed", "6", "--resume"])
        assert rc == EXIT_ERROR
        assert "different" in capsys.readouterr().err

    def test_exit_code_table_in_help(self, capsys):
        for argv in (["--help"], ["campaign", "--help"]):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 0
            out = capsys.readouterr().out
            assert "exit codes:" in out
            assert "re-run with --resume" in out

    def test_exit_code_values_documented(self):
        # The numeric contract the table and CI scripts rely on.
        assert (EXIT_OK, EXIT_NOTHING, EXIT_ERROR, EXIT_ISSUES,
                EXIT_INTERRUPTED) == (0, 1, 2, 3, 4)
        assert tdat_cli.EXIT_DEGRADED == 6


@pytest.fixture(scope="module")
def flood_pcap(tmp_path_factory):
    from repro.faults.stress import connection_flood, write_stress_pcap

    path = tmp_path_factory.mktemp("tdat-budget") / "flood.pcap"
    write_stress_pcap(path, connection_flood(connections=80))
    return path


class TestBudgetFlags:
    def test_tight_budget_exits_degraded(self, flood_pcap, capsys):
        rc = main([
            "analyze", str(flood_pcap), "--json",
            "--max-live-connections", "12",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert rc == tdat_cli.EXIT_DEGRADED
        degradation = payload["degradation"]
        assert degradation["degraded"] is True
        assert degradation["peak_live_connections"] <= 12
        # Degradation is noisy but benign: exit 6, not exit 3.
        assert all(issue["benign"] for issue in payload["health"]["issues"])

    def test_ample_budget_exits_clean(self, flood_pcap, capsys):
        rc = main([
            "analyze", str(flood_pcap), "--json",
            "--max-live-connections", "200",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert rc == EXIT_OK
        assert payload["degradation"]["degraded"] is False

    def test_connection_packet_cap_flag(self, flood_pcap, capsys):
        # Cap 6 admits the handshake plus both data segments, so the
        # capped flows stay above the analyzable-data floor.
        rc = main([
            "analyze", str(flood_pcap), "--json",
            "--max-connection-packets", "6",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert rc == tdat_cli.EXIT_DEGRADED
        assert payload["degradation"]["packets_shed"] > 0
        # Partial-result semantics surface per connection.
        assert any(
            conn["complete"] is False and conn["confidence"] == "reduced"
            for conn in payload["connections"]
        )

    def test_unbudgeted_json_has_no_degradation_key(self, flood_pcap, capsys):
        rc = main(["analyze", str(flood_pcap), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == EXIT_OK
        assert "degradation" not in payload
        assert all(conn["complete"] for conn in payload["connections"])

    def test_help_documents_the_degraded_exit(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "resource budget shed state" in out
        assert "--max-live-connections" in out
        assert "--max-state-bytes" in out
        assert "--max-connection-packets" in out


class TestObservability:
    def test_json_stdout_pipes_into_json_tool(self, clean_pcap):
        """The satellite contract, literally: ``tdat analyze --json |
        python -m json.tool`` must succeed — every human-facing line
        belongs on stderr."""
        import subprocess
        import sys

        analyze = subprocess.run(
            [
                sys.executable, "-m", "repro.tools.tdat_cli",
                "analyze", str(clean_pcap), "--json",
            ],
            capture_output=True,
        )
        assert analyze.returncode == 0, analyze.stderr.decode()
        pretty = subprocess.run(
            [sys.executable, "-m", "json.tool"],
            input=analyze.stdout, capture_output=True,
        )
        assert pretty.returncode == 0, pretty.stderr.decode()
        json.loads(pretty.stdout)

    def test_campaign_json_stdout_is_machine_clean(self, capsys):
        rc = main([
            "campaign", "ISP_A-Quagga",
            "--transfers", "2", "--seed", "5", "--json",
        ])
        captured = capsys.readouterr()
        assert rc == EXIT_OK
        json.loads(captured.out)  # nothing but the payload on stdout
        assert "campaign ISP_A-Quagga" in captured.err  # chatter -> stderr

    def test_quiet_suppresses_stderr_chatter(self, capsys):
        rc = main([
            "campaign", "ISP_A-Quagga",
            "--transfers", "2", "--seed", "5", "--json", "--quiet",
        ])
        captured = capsys.readouterr()
        assert rc == EXIT_OK
        json.loads(captured.out)
        assert captured.err == ""

    def test_trace_and_metrics_exports(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        rc = main([
            "campaign", "ISP_A-Quagga",
            "--transfers", "2", "--seed", "5", "--json",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
        ])
        captured = capsys.readouterr()
        assert rc == EXIT_OK
        json.loads(captured.out)
        assert "wrote Chrome trace" in captured.err
        assert "wrote metrics" in captured.err

        trace = json.loads(trace_path.read_text())
        spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        assert spans
        for event in spans:
            for key in ("name", "ph", "ts", "dur", "pid", "tid"):
                assert key in event
        names = {e["name"] for e in spans}
        assert {"campaign.episode", "episode.simulate",
                "episode.analyze"} <= names

        metrics = json.loads(metrics_path.read_text())
        # 2 transfers + the campaign's zero-ack-bug probe episode
        assert metrics["campaign.episodes"]["value"] == 3
        assert "sim.events" in metrics

    def test_stats_renders_metrics_table(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        rc = main([
            "campaign", "ISP_A-Quagga",
            "--transfers", "2", "--seed", "5", "--json", "--quiet",
            "--metrics-out", str(metrics_path),
        ])
        capsys.readouterr()
        assert rc == EXIT_OK

        assert main(["stats", str(metrics_path)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "campaign.episodes" in out
        assert "sim.events" in out
        assert "pool.spawned" not in out or "*" in out  # wall marked

        rc = main(["stats", str(metrics_path), "--deterministic-only"])
        out = capsys.readouterr().out
        assert rc == EXIT_OK
        assert "campaign.episodes" in out
        assert "checkpoint.write_s" not in out

    def test_stats_on_junk_is_an_error(self, tmp_path, capsys):
        junk = tmp_path / "metrics.json"
        junk.write_text("[1, 2, 3]\n")
        assert main(["stats", str(junk)]) == EXIT_ERROR
        assert "error" in capsys.readouterr().err
