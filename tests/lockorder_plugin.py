"""Runtime lock-order recorder: the dynamic cross-check for RL011.

RL011 proves the *static* acquires-while-holding graph acyclic.  This
pytest plugin checks the same property at runtime: it wraps
``threading.Lock``/``threading.RLock`` so every acquire records a
``held -> acquired`` edge (keyed by the lock's construction site), and
fails the session if the observed graph contains a cycle — two code
paths that really did take the same locks in opposite orders, i.e. a
deadlock waiting for the right interleaving.

Only locks *constructed* from repo code (``src/repro``) are
instrumented; stdlib-internal locks (queue, logging, asyncio) pass
through untouched, so the recorder adds no noise and near-zero
overhead to everything else.  Locks reached through
``threading.Condition()`` are covered too: the construction-site walk
skips ``threading.py`` frames, so a feeder's condition variable is
attributed to the feeder, and the proxy forwards the
``_release_save``/``_acquire_restore`` hooks ``Condition.wait`` uses —
the held-set correctly drops the lock for the duration of a wait.

Enable with ``-p tests.lockorder_plugin`` (CI's ``concurrency-smoke``
job runs ``tests/serve`` and ``tests/exec`` under it).  On an observed
inversion the session exit code becomes 3 and the report names both
witness sites, mirroring RL011's two-chain message.
"""

from __future__ import annotations

import os
import sys
import threading
from collections import deque
from typing import Any, Iterator

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
INSTRUMENTED_SUBTREE = os.path.join(REPO_ROOT, "src", "repro")

#: pytest exit code on an observed inversion (2 is internal error,
#: 1 is test failures; 3 keeps the signal distinguishable in CI logs).
EXIT_LOCK_ORDER = 3

_THREADING_FILE = threading.__file__
_PLUGIN_FILE = os.path.abspath(__file__)


def _construction_site() -> str:
    """``path:line`` of the frame that asked for the lock, skipping
    this plugin and ``threading`` internals (``Condition.__init__``
    building its default RLock must attribute to Condition's caller)."""
    frame = sys._getframe(2)
    while frame is not None:
        filename = frame.f_code.co_filename
        if filename not in (_PLUGIN_FILE, _THREADING_FILE):
            return f"{os.path.abspath(filename)}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>:0"


def _in_repo(site: str) -> bool:
    return site.startswith(INSTRUMENTED_SUBTREE + os.sep)


def _relative(site: str) -> str:
    path, _, line = site.rpartition(":")
    if path.startswith(REPO_ROOT + os.sep):
        path = path[len(REPO_ROOT) + 1 :]
    return f"{path}:{line}"


class LockOrderRecorder:
    """The observed acquires-while-holding graph.

    Nodes are lock construction sites (all locks born on one line are
    one node — instance identity does not matter for ordering rules,
    same as RL011's attribute paths).  Edges carry the first witness:
    which thread, at which line, acquired the target while holding the
    source.
    """

    def __init__(self) -> None:
        self._held = threading.local()
        self._mutex = _REAL_LOCK()
        # {(held site, acquired site): (thread name, acquire site)}
        self.edges: dict[tuple[str, str], tuple[str, str]] = {}

    # -- proxy callbacks ------------------------------------------------
    def _stack(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def on_acquire(self, site: str) -> None:
        stack = self._stack()
        if stack:
            frame = sys._getframe(2)
            where = f"{os.path.abspath(frame.f_code.co_filename)}:{frame.f_lineno}"
            witness = (threading.current_thread().name, _relative(where))
            with self._mutex:
                for held in stack:
                    if held != site:
                        self.edges.setdefault((held, site), witness)
        stack.append(site)

    def on_release(self, site: str) -> None:
        stack = self._stack()
        # Release order need not be LIFO; drop the innermost match.
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == site:
                del stack[index]
                return

    # -- verdict ---------------------------------------------------------
    def inversions(self) -> list[list[str]]:
        """Cycles in the observed order graph, each as the site list
        ``[a, b, ..., a]``, deterministically ordered."""
        with self._mutex:
            adjacency: dict[str, set[str]] = {}
            for held, acquired in self.edges:
                adjacency.setdefault(held, set()).add(acquired)
        cycles: list[list[str]] = []
        for start in sorted(adjacency):
            path = _path_back_to(adjacency, start)
            if path is not None and min(path[:-1]) == start:
                cycles.append(path)  # report each cycle once, anchored
        return cycles

    def describe(self, cycle: list[str]) -> list[str]:
        lines = []
        with self._mutex:
            for held, acquired in zip(cycle, cycle[1:]):
                thread, where = self.edges[(held, acquired)]
                lines.append(
                    f"  {_relative(held)} held while acquiring "
                    f"{_relative(acquired)} (thread {thread!r} at {where})"
                )
        return lines


def _path_back_to(
    adjacency: dict[str, set[str]], start: str
) -> list[str] | None:
    """Shortest ``start -> ... -> start`` cycle, or None."""
    previous: dict[str, str] = {}
    queue: deque[str] = deque([start])
    seen = {start}
    while queue:
        node = queue.popleft()
        for neighbor in sorted(adjacency.get(node, ())):
            if neighbor == start:
                path = [node]
                while path[-1] != start:
                    path.append(previous[path[-1]])
                path.reverse()
                return path + [start]
            if neighbor in seen:
                continue
            previous[neighbor] = node
            seen.add(neighbor)
            queue.append(neighbor)
    return None


class _RecordingLock:
    """A lock proxy that reports acquires/releases to the recorder."""

    __slots__ = ("_inner", "_site", "_recorder")

    def __init__(self, inner: Any, site: str, recorder: LockOrderRecorder) -> None:
        self._inner = inner
        self._site = site
        self._recorder = recorder

    def acquire(self, *args: Any, **kwargs: Any) -> bool:
        got = self._inner.acquire(*args, **kwargs)
        if got:
            self._recorder.on_acquire(self._site)
        return got

    def release(self) -> None:
        self._inner.release()
        self._recorder.on_release(self._site)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def _at_fork_reinit(self) -> None:
        self._inner._at_fork_reinit()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<recorded {self._inner!r} from {_relative(self._site)}>"


class _RecordingRLock(_RecordingLock):
    """The RLock proxy: adds the hooks ``Condition`` probes for.

    A plain-Lock proxy must NOT define these — ``Condition.__init__``
    takes any ``_is_owned``/``_release_save``/``_acquire_restore`` it
    finds, and forwarding them to a plain ``_thread.lock`` would
    explode at wait time; the Lock proxy leaves Condition to its
    acquire/release fallbacks (which route through the proxy anyway).
    """

    __slots__ = ()

    # Condition.wait's hand-off hooks: the lock is *not* held while
    # waiting, and the recorder's held-set must agree or every acquire
    # made by the woken thread would fabricate held-while edges.
    def _is_owned(self) -> bool:
        return self._inner._is_owned()

    def _release_save(self) -> Any:
        self._recorder.on_release(self._site)
        return self._inner._release_save()

    def _acquire_restore(self, state: Any) -> None:
        self._inner._acquire_restore(state)
        self._recorder.on_acquire(self._site)


_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock
_ACTIVE: LockOrderRecorder | None = None


def _reset_after_fork() -> None:
    # A WorkPool fork can inherit the recorder's mutex mid-acquire;
    # the child's recordings are lost anyway, so give it fresh state.
    if _ACTIVE is not None:
        _ACTIVE._mutex = _REAL_LOCK()
        _ACTIVE._held = threading.local()


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=_reset_after_fork)


def install() -> LockOrderRecorder:
    """Patch the ``threading`` factories; returns the live recorder."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("lock-order recorder already installed")
    recorder = LockOrderRecorder()

    def recording_lock() -> Any:
        site = _construction_site()
        inner = _REAL_LOCK()
        if not _in_repo(site):
            return inner
        return _RecordingLock(inner, site, recorder)

    def recording_rlock() -> Any:
        site = _construction_site()
        inner = _REAL_RLOCK()
        if not _in_repo(site):
            return inner
        return _RecordingRLock(inner, site, recorder)

    threading.Lock = recording_lock  # type: ignore[misc, assignment]
    threading.RLock = recording_rlock  # type: ignore[misc, assignment]
    _ACTIVE = recorder
    return recorder


def uninstall() -> None:
    global _ACTIVE
    threading.Lock = _REAL_LOCK  # type: ignore[misc]
    threading.RLock = _REAL_RLOCK  # type: ignore[misc]
    _ACTIVE = None


# ---------------------------------------------------------------------- #
# The pytest hooks                                                        #
# ---------------------------------------------------------------------- #
def pytest_configure(config: Any) -> None:
    config._lockorder_recorder = install()


def pytest_sessionfinish(session: Any, exitstatus: int) -> None:
    recorder = getattr(session.config, "_lockorder_recorder", None)
    if recorder is None:
        return
    cycles = recorder.inversions()
    edge_count = len(recorder.edges)
    lines = [
        "",
        f"lock-order recorder: {edge_count} held-while-acquiring "
        f"edge(s) observed",
    ]
    if cycles:
        lines.append(
            f"OBSERVED LOCK-ORDER INVERSION(S): {len(cycles)} cycle(s)"
        )
        for cycle in cycles:
            lines.append(" cycle:")
            lines.extend(recorder.describe(cycle))
        session.exitstatus = EXIT_LOCK_ORDER
    print("\n".join(lines))


def pytest_unconfigure(config: Any) -> None:
    if getattr(config, "_lockorder_recorder", None) is not None:
        uninstall()
        config._lockorder_recorder = None
