"""Failure-injection tests: the analyzer must survive damaged captures."""

import random

import pytest

from repro.analysis.profile import Trace
from repro.analysis.tdat import analyze_pcap
from repro.bgp.table import generate_table
from repro.core.units import seconds
from repro.netsim.simulator import Simulator
from repro.wire.pcap import PcapRecord
from repro.workloads.scenarios import MonitoringSetup, RouterParams


@pytest.fixture(scope="module")
def records():
    sim = Simulator()
    setup = MonitoringSetup(sim)
    table = generate_table(3_000, random.Random(55))
    setup.add_router(RouterParams(name="r1", ip="10.55.0.1", table=table))
    setup.start()
    sim.run(until_us=seconds(60))
    return setup.sniffer.sorted_records()


class TestDamagedCaptures:
    def test_corrupted_frames_skipped(self, records):
        rng = random.Random(1)
        damaged = []
        corrupted = 0
        for record in records:
            data = bytearray(record.data)
            if rng.random() < 0.1:
                # Smash the IP version/IHL byte: parsing must fail fast.
                data[14] = 0x00
                corrupted += 1
            damaged.append(PcapRecord(record.timestamp_us, bytes(data)))
        trace = Trace.from_pcap(damaged)
        assert trace.skipped_frames == corrupted
        report = analyze_pcap(damaged, min_data_packets=2)
        assert len(report) == 1  # analysis proceeds on the survivors

    def test_truncated_frames_skipped(self, records):
        damaged = [
            PcapRecord(r.timestamp_us, r.data[:20]) if i % 7 == 0 else r
            for i, r in enumerate(records)
        ]
        trace = Trace.from_pcap(damaged)
        assert trace.skipped_frames > 0
        report = analyze_pcap(damaged, min_data_packets=2)
        assert len(report) == 1

    def test_single_packet_connection_skipped(self, records):
        lonely = [records[len(records) // 2]]
        report = analyze_pcap(lonely, min_data_packets=2)
        assert len(report) == 0
        assert report.skipped_connections >= 0

    def test_empty_capture(self):
        report = analyze_pcap([], min_data_packets=2)
        assert len(report) == 0

    def test_ack_only_capture(self, records):
        from repro.wire import frames

        acks_only = []
        for record in records:
            parsed = frames.parse_frame(record.data)
            if not parsed.tcp.payload:
                acks_only.append(record)
        report = analyze_pcap(acks_only, min_data_packets=2)
        # A capture with no data segments has nothing to analyze, but
        # must not crash.
        assert len(report) == 0

    def test_duplicated_records(self, records):
        doubled = []
        for record in records:
            doubled.append(record)
            doubled.append(record)
        report = analyze_pcap(doubled, min_data_packets=2)
        analysis = next(iter(report))
        # Every data packet appears twice: massive duplicate labeling,
        # but the pipeline completes and ratios stay in range.
        for value in analysis.factors.ratios.values():
            assert 0.0 <= value <= 1.0
