"""Resource budgets: validation, deterministic eviction, degradation
accounting, and the ample-budget identity invariant."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.budget import (
    POLICIES,
    POLICY_DROP_COLDEST,
    POLICY_FINALIZE_IDLE,
    ResourceBudget,
    StateLedger,
)
from repro.analysis.tdat import analyze_pcap, iter_analyze_pcap
from repro.api import AnalysisRequest, Pipeline
from repro.faults.stress import (
    ALLOWED_DEGRADATION_KINDS,
    analysis_fingerprint,
    connection_flood,
    pathological_reorder,
)
from repro.wire.tcpw import ACK, FIN, PSH

FLOOD_N = 150


@pytest.fixture(scope="module")
def flood():
    return list(connection_flood(connections=FLOOD_N))


class TestResourceBudget:
    def test_unbounded_by_default(self):
        budget = ResourceBudget()
        assert not budget.bounded
        assert budget.policies == POLICIES

    def test_limits_must_be_positive(self):
        with pytest.raises(ValueError):
            ResourceBudget(max_live_connections=0)
        with pytest.raises(ValueError):
            ResourceBudget(max_state_bytes=-1)

    def test_watermarks_must_be_ordered_fractions(self):
        with pytest.raises(ValueError):
            ResourceBudget(high_watermark=1.5)
        with pytest.raises(ValueError):
            ResourceBudget(low_watermark=0.95, high_watermark=0.9)
        with pytest.raises(ValueError):
            ResourceBudget(low_watermark=0.0)

    def test_policies_must_be_known_and_nonempty(self):
        with pytest.raises(ValueError):
            ResourceBudget(policies=())
        with pytest.raises(ValueError):
            ResourceBudget(policies=("shred-everything",))
        budget = ResourceBudget(
            max_live_connections=4, policies=(POLICY_DROP_COLDEST,)
        )
        assert budget.bounded

    def test_describe_names_the_limits(self):
        text = ResourceBudget(
            max_live_connections=8, max_state_bytes=1 << 20
        ).describe()
        assert "live<=8" in text
        assert "watermarks" in text


class TestStateLedger:
    def test_admission_charges_and_discharge_reclaims(self):
        ledger = StateLedger(ResourceBudget(max_live_connections=10))
        key = ("10.0.0.1", 1024, "10.0.0.2", 179)
        assert ledger.admit(key, 100, ACK | PSH, 1_000)
        assert ledger.live_connections == 1
        assert ledger.summary.peak_live_connections == 1
        ledger.discharge(key)
        assert ledger.live_connections == 0

    def test_per_connection_packet_cap_sheds_but_admits_close(self):
        ledger = StateLedger(ResourceBudget(max_connection_packets=2))
        key = ("10.0.0.1", 1024, "10.0.0.2", 179)
        assert ledger.admit(key, 10, ACK | PSH, 1_000)
        assert ledger.admit(key, 10, ACK | PSH, 2_000)
        assert not ledger.admit(key, 10, ACK | PSH, 3_000)  # over cap
        assert ledger.admit(key, 0, ACK | FIN, 4_000)  # close always lands
        summary = ledger.summary
        assert summary.capped == 1
        assert summary.packets_shed == 1

    def test_finish_records_degraded_marker_once(self):
        from repro.core.health import TraceHealth

        health = TraceHealth()
        ledger = StateLedger(
            ResourceBudget(max_connection_packets=1), health=health
        )
        key = ("10.0.0.1", 1024, "10.0.0.2", 179)
        ledger.admit(key, 10, ACK | PSH, 1_000)
        ledger.admit(key, 10, ACK | PSH, 2_000)
        ledger.finish()
        kinds = health.by_kind()
        assert kinds.get("analysis-degraded") == 1
        assert all(issue.benign for issue in health.issues)


class TestEviction:
    def test_tight_budget_stays_inside_and_degrades_benignly(self, flood):
        limit = 24
        report = analyze_pcap(
            flood, budget=ResourceBudget(max_live_connections=limit)
        )
        summary = report.degradation
        assert summary is not None and summary.degraded
        assert summary.peak_live_connections <= limit
        assert summary.watermark_trips > 0
        assert summary.finalized_early > 0
        assert not report.health.failures
        assert set(report.health.by_kind()) <= ALLOWED_DEGRADATION_KINDS

    def test_capped_connection_is_flagged_incomplete(self):
        # Flows evicted before any data transfer fall under the
        # min-data-packets floor; a *capped* connection keeps enough
        # state to be analyzed and must carry the partial-result flag.
        records = list(pathological_reorder(segments=300))
        report = analyze_pcap(
            records, budget=ResourceBudget(max_connection_packets=48)
        )
        (analysis,) = list(report)
        assert not analysis.complete
        assert analysis.confidence == "reduced"
        unbudgeted = analyze_pcap(records)
        assert all(a.complete for a in unbudgeted)
        assert all(a.confidence == "full" for a in unbudgeted)

    def test_eviction_order_is_deterministic(self, flood):
        def evictions():
            report = analyze_pcap(
                flood, budget=ResourceBudget(max_live_connections=24)
            )
            return [
                record.to_dict() for record in report.degradation.evictions
            ]

        assert evictions() == evictions()

    def test_workers_do_not_change_the_budgeted_report(self, flood):
        budget = ResourceBudget(max_live_connections=24)
        serial = Pipeline(workers=1, budget=budget).analyze(flood)
        parallel = Pipeline(workers=4, budget=budget).analyze(flood)
        assert analysis_fingerprint(serial) == analysis_fingerprint(parallel)
        assert (
            serial.degradation.to_dict() == parallel.degradation.to_dict()
        )

    def test_drop_coldest_discards_instead_of_finalizing(self, flood):
        report = analyze_pcap(
            flood,
            budget=ResourceBudget(
                max_live_connections=24, policies=(POLICY_DROP_COLDEST,)
            ),
        )
        summary = report.degradation
        assert summary.dropped > 0
        assert summary.finalized_early == 0
        assert "analysis-state-evicted" in report.health.by_kind()
        assert {
            record.kind for record in summary.evictions
        } == {"dropped"}
        finalize = analyze_pcap(
            flood, budget=ResourceBudget(max_live_connections=24)
        )
        assert {
            record.kind for record in finalize.degradation.evictions
        } == {"finalized-early"}
        assert (
            "analysis-connection-finalized-early"
            in finalize.health.by_kind()
        )

    def test_connection_cap_sheds_reorder_bloat(self):
        records = list(pathological_reorder(segments=300))
        report = analyze_pcap(
            records, budget=ResourceBudget(max_connection_packets=48)
        )
        summary = report.degradation
        assert summary.capped == 1
        assert summary.packets_shed > 0
        assert summary.bytes_shed > 0
        assert not report.health.failures


class TestAmpleBudgetIdentity:
    def test_ample_budget_is_invisible(self, flood):
        clean = analyze_pcap(flood, streaming=True)
        budgeted = analyze_pcap(
            flood, budget=ResourceBudget(max_live_connections=FLOOD_N * 2)
        )
        assert not budgeted.degradation.degraded
        assert analysis_fingerprint(budgeted) == analysis_fingerprint(clean)

    @settings(max_examples=8, deadline=None)
    @given(
        connections=st.integers(min_value=2, max_value=12),
        headroom=st.integers(min_value=2, max_value=5),
    )
    def test_property_any_ample_budget_matches_unbudgeted(
        self, connections, headroom
    ):
        records = list(connection_flood(connections=connections))
        clean = analyze_pcap(records, streaming=True)
        budgeted = analyze_pcap(
            records,
            budget=ResourceBudget(
                max_live_connections=connections * headroom
            ),
        )
        assert not budgeted.degradation.degraded
        assert analysis_fingerprint(budgeted) == analysis_fingerprint(clean)


class TestApiKnobs:
    def test_pipeline_budget_reaches_the_report(self, flood):
        pipe = Pipeline(budget=ResourceBudget(max_live_connections=24))
        report = pipe.analyze(flood)
        assert report.degradation is not None
        assert report.degradation.degraded

    def test_request_budget_overrides_pipeline_budget(self, flood):
        pipe = Pipeline(budget=ResourceBudget(max_live_connections=24))
        report = pipe.run(AnalysisRequest(
            source=flood,
            budget=ResourceBudget(max_live_connections=FLOOD_N * 2),
        ))
        assert not report.degradation.degraded

    def test_iter_analyze_accepts_budget(self, flood):
        pipe = Pipeline(budget=ResourceBudget(max_live_connections=24))
        analyses = list(pipe.iter_analyze(flood))
        assert analyses
        # Flows evicted during the SYN flood never reach the data
        # floor, so a tight budget visibly thins the yielded analyses.
        assert len(analyses) < FLOOD_N

    def test_iter_analyze_pcap_exposes_ledger_summary(self, flood):
        ledger = StateLedger(ResourceBudget(max_live_connections=24))
        count = sum(1 for _ in iter_analyze_pcap(flood, ledger=ledger))
        assert count > 0
        assert ledger.summary.degraded
        assert ledger.summary.peak_live_connections <= 24

    def test_unbudgeted_report_has_no_degradation_summary(self, flood):
        assert analyze_pcap(flood).degradation is None


class TestObservability:
    def test_budget_metrics_and_span_are_recorded(self, flood):
        from repro.obs import Observability, use_obs

        obs = Observability.create()
        with use_obs(obs):
            analyze_pcap(
                flood, budget=ResourceBudget(max_live_connections=24)
            )
        snapshot = obs.metrics.to_dict()
        assert snapshot["analysis.evictions"]["value"] > 0
        assert 0 < snapshot["analysis.live_connections"]["peak"] <= 24
        assert snapshot["analysis.state_bytes"]["peak"] > 0
        names = {span.name for span in obs.tracer.spans}
        assert "analysis.eviction" in names
