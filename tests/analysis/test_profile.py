"""Unit tests for trace parsing and connection profiling."""

import io
import random

from repro.analysis.profile import Trace, canonical_key
from repro.bgp.table import generate_table
from repro.netsim.simulator import Simulator
from repro.wire.pcap import PcapRecord, records_to_bytes
from repro.workloads.scenarios import MonitoringSetup, RouterParams

from tests.analysis.helpers import (
    DPORT,
    RECEIVER,
    SENDER,
    SPORT,
    TraceBuilder,
)


class TestCanonicalKey:
    def test_order_independence(self):
        a = canonical_key("10.0.0.1", 40000, "10.0.0.2", 179)
        b = canonical_key("10.0.0.2", 179, "10.0.0.1", 40000)
        assert a == b

    def test_distinct_ports_distinct_keys(self):
        a = canonical_key("10.0.0.1", 40000, "10.0.0.2", 179)
        b = canonical_key("10.0.0.1", 40001, "10.0.0.2", 179)
        assert a != b


class TestConnectionBasics:
    def test_sender_is_bulk_data_source(self):
        conn = (
            TraceBuilder()
            .handshake()
            .data(20_000, 0, 1400)
            .data(20_100, 1400, 1400)
            .ack(21_000, 2800)
            .build()
        )
        assert conn.sender_ip == SENDER
        assert conn.receiver_ip == RECEIVER

    def test_relative_sequences(self):
        conn = TraceBuilder().handshake().data(20_000, 0, 1400).build()
        packet = conn.data_packets()[0]
        assert conn.relative_seq(packet) == 0
        conn2 = (
            TraceBuilder().handshake().data(20_000, 0, 100).ack(21_000, 100).build()
        )
        assert conn2.relative_ack(conn2.ack_packets()[-1]) == 100

    def test_profile_counts(self):
        conn = (
            TraceBuilder()
            .handshake()
            .data(20_000, 0, 1400)
            .data(20_100, 1400, 1000)
            .ack(21_000, 2400)
            .build()
        )
        profile = conn.profile
        assert profile.total_data_bytes == 2400
        assert profile.total_data_packets == 2
        assert profile.total_ack_packets >= 1
        assert profile.saw_syn
        assert not profile.saw_fin

    def test_mss_from_syn_option(self):
        conn = TraceBuilder().handshake().data(20_000, 0, 512).build()
        assert conn.profile.mss == 1400

    def test_d2_from_handshake(self):
        conn = (
            TraceBuilder()
            .handshake(t0=0, d1=1_000, d2=8_000)
            .data(20_000, 0, 1400)
            .ack(21_000, 1400)
            .build()
        )
        assert conn.profile.d2_us == 8_000

    def test_d1_from_exact_acks(self):
        builder = TraceBuilder().handshake()
        t = 20_000
        for i in range(5):
            builder.data(t, i * 1400, 1400)
            builder.ack(t + 700, (i + 1) * 1400)
            t += 10_000
        conn = builder.build()
        assert conn.profile.d1_us == 700
        assert conn.profile.rtt_us == 8_700

    def test_max_advertised_window(self):
        conn = (
            TraceBuilder()
            .handshake()
            .data(20_000, 0, 1400)
            .ack(21_000, 1400, window=16384)
            .ack(22_000, 1400, window=12000)
            .build()
        )
        assert conn.profile.max_advertised_window == 16384


class TestTraceFromPcap:
    def make_capture(self):
        sim = Simulator()
        setup = MonitoringSetup(sim)
        table = generate_table(2000, random.Random(21))
        setup.add_router(RouterParams(name="r1", ip="10.1.0.1", table=table))
        setup.start()
        sim.run(until_us=60_000_000)
        return setup.sniffer.sorted_records()

    def test_parse_records_directly(self):
        records = self.make_capture()
        trace = Trace.from_pcap(records)
        assert len(trace) == 1
        conn = next(iter(trace))
        assert conn.profile is not None
        assert conn.profile.total_data_bytes > 8_000
        assert conn.sender_ip == "10.1.0.1"

    def test_parse_pcap_bytes(self):
        records = self.make_capture()
        trace = Trace.from_pcap(io.BytesIO(records_to_bytes(records)))
        assert len(trace) == 1
        assert trace.total_records == len(records)
        assert trace.skipped_frames == 0

    def test_rtt_estimate_close_to_topology(self):
        records = self.make_capture()
        conn = next(iter(Trace.from_pcap(records)))
        # Topology: wan 4ms + tapped 50us + local 0.5ms each way plus
        # serialization => RTT just above 9ms as seen from the tap.
        assert 7_000 < conn.profile.rtt_us < 13_000

    def test_garbage_frames_skipped(self):
        records = self.make_capture()
        records.append(PcapRecord(timestamp_us=10**9, data=b"\x00" * 40))
        trace = Trace.from_pcap(records)
        assert trace.skipped_frames == 1
