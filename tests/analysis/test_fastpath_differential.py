"""Differential suite: every fast path vs. its pure-python reference.

The performance knobs (``mmap``, ``decode_batch``, ``series_backend``)
select fast paths that must be **byte-identical** to the reference
implementations — over clean captures, over the mangled-pcap fault
corpus, and over adversarial record layouts drawn by Hypothesis.
These tests are the contract the knobs advertise.
"""

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import series_np
from repro.analysis.series import SeriesConfig, generate_series
from repro.analysis.tdat import analyze_pcap
from repro.core.health import TraceHealth
from repro.faults.fuzz import clean_trace_bytes
from repro.faults.mangle import OPERATORS, mangle
from repro.tools.tdat_cli import _analysis_to_dict
from repro.wire import frames
from repro.wire.pcap import PcapReader, PcapRecord, records_to_bytes
from tests.analysis.helpers import TraceBuilder


@pytest.fixture(scope="module")
def clean_blob():
    """One deterministic monitored table transfer, as pcap bytes."""
    return clean_trace_bytes(table_prefixes=800, duration_s=60)


def analyze_payload(blob: bytes, **knobs) -> dict:
    """The canonical {connections, health} JSON view of one analysis."""
    report = analyze_pcap(io.BytesIO(blob), **knobs)
    payload = {
        "connections": {
            str(key): _analysis_to_dict(analysis)
            for key, analysis in report.analyses.items()
        },
        "health": report.health.to_dict(),
    }
    # Round-trip through JSON so exotic value types can't compare
    # equal while serializing differently.
    return json.loads(json.dumps(payload, sort_keys=True))


def read_outcome(blob: bytes, **reader_knobs):
    """Records + health ledger one reader configuration produces."""
    health = TraceHealth()
    records = list(
        PcapReader(io.BytesIO(blob), tolerant=True, health=health, **reader_knobs)
    )
    return records, health.to_dict()


class TestAnalyzeDifferential:
    """Full-pipeline identity: fast knobs on vs. forced off."""

    def test_clean_capture_all_knob_combinations(self, clean_blob):
        reference = analyze_payload(
            clean_blob, mmap=False, series_backend="python"
        )
        assert reference["connections"], "corpus produced no analyses"
        for knobs in (
            {},
            {"mmap": True},
            {"decode_batch": 1},
            {"decode_batch": 7},
            {"series_backend": "auto"},
            {"streaming": True},
        ):
            assert analyze_payload(clean_blob, **knobs) == reference, knobs

    @pytest.mark.parametrize("operator", sorted(OPERATORS))
    @pytest.mark.parametrize("seed", [3, 17])
    def test_mangled_corpus_identical(self, clean_blob, operator, seed):
        """Damage must produce identical reports AND identical health.

        Every fault operator forces some mix of truncation, resync and
        timestamp trouble; whatever the streaming reader records, the
        fast pre-scan must either reproduce it exactly (by falling
        back) or prove it could not happen (clean scan).
        """
        blob = mangle(clean_blob, [operator], seed=seed)
        fast = analyze_payload(blob)
        reference = analyze_payload(blob, mmap=False, series_backend="python")
        assert fast == reference

    def test_truncated_mid_record(self, clean_blob):
        cut = clean_blob[: len(clean_blob) - 11]
        assert analyze_payload(cut) == analyze_payload(cut, mmap=False)

    def test_nanosecond_magic(self, clean_blob):
        records, _ = read_outcome(clean_blob)
        nano = records_to_bytes(records, nanosecond=True)
        assert analyze_payload(nano) == analyze_payload(nano, mmap=False)


class TestReaderDifferential:
    """Record-level identity of the batched scanner vs. streaming reads."""

    def test_clean_blob_records_and_health(self, clean_blob):
        fast_records, fast_health = read_outcome(clean_blob)
        ref_records, ref_health = read_outcome(clean_blob, mmap=False)
        assert fast_records == ref_records
        assert fast_health == ref_health

    @given(
        sizes=st.lists(st.integers(min_value=0, max_value=120), max_size=12),
        jumps=st.lists(
            st.integers(min_value=-10**8, max_value=10**13), max_size=12
        ),
        cut=st.integers(min_value=0, max_value=400),
        nanosecond=st.booleans(),
        batch=st.sampled_from([1, 2, 512]),
    )
    @settings(max_examples=80, deadline=None)
    def test_arbitrary_layouts_identical(
        self, sizes, jumps, cut, nanosecond, batch
    ):
        """Hypothesis: batched scanning == streaming, bytes and health.

        Layouts cover empty records, timestamp regressions, implausible
        jumps (which dirty the scan) and truncation at every offset.
        """
        timestamp = 1_000_000
        records = []
        for index, size in enumerate(sizes):
            timestamp = max(timestamp + (jumps[index] if index < len(jumps) else 250), 0)
            records.append(
                PcapRecord(
                    timestamp_us=timestamp,
                    data=bytes([index % 251]) * size,
                )
            )
        blob = records_to_bytes(records, nanosecond=nanosecond)
        blob = blob[: max(len(blob) - cut, 0)]
        fast = read_outcome(blob, decode_batch=batch)
        reference = read_outcome(blob, mmap=False)
        assert fast == reference

    def test_strict_mode_identical(self, clean_blob):
        for blob in (clean_blob, clean_blob[:-7]):
            fast_health = TraceHealth(strict=True)
            ref_health = TraceHealth(strict=True)
            fast = list(
                PcapReader(io.BytesIO(blob), health=fast_health)
            )
            reference = list(
                PcapReader(io.BytesIO(blob), health=ref_health, mmap=False)
            )
            assert fast == reference
            assert fast_health.to_dict() == ref_health.to_dict()


class TestFrameDecodeDifferential:
    """parse_packet (fused) vs. parse_frame (layered) over real frames."""

    def test_corpus_frames_identical(self, clean_blob):
        records, _ = read_outcome(clean_blob)
        assert records
        for record in records:
            parsed = frames.parse_frame(record.data)
            fields = frames.parse_packet(record.data)
            assert fields.src_ip == parsed.ipv4.src
            assert fields.dst_ip == parsed.ipv4.dst
            assert fields.src_port == parsed.tcp.src_port
            assert fields.dst_port == parsed.tcp.dst_port
            assert fields.seq == parsed.tcp.seq
            assert fields.ack == parsed.tcp.ack
            assert fields.flags == parsed.tcp.flags
            assert fields.window == parsed.tcp.window
            assert fields.ip_id == parsed.ipv4.identification
            assert fields.payload == parsed.tcp.payload
            assert fields.mss_option == parsed.tcp.mss_option
            assert fields.wscale_option == parsed.tcp.wscale_option

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        flips=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=199),
                st.integers(min_value=1, max_value=255),
            ),
            min_size=1,
            max_size=6,
        ),
        cut=st.integers(min_value=0, max_value=80),
    )
    @settings(max_examples=120, deadline=None)
    def test_damaged_frames_raise_identically(self, seed, flips, cut):
        """Mangled bytes: same decode result or the same FrameError."""
        base = _DAMAGE_CORPUS[seed % len(_DAMAGE_CORPUS)]
        data = bytearray(base)
        for offset, xor in flips:
            if data:
                data[offset % len(data)] ^= xor
        blob = bytes(data[: max(len(data) - cut, 0)])
        try:
            parsed = frames.parse_frame(blob)
            reference = ("ok", parsed.flow, parsed.tcp.payload)
        except frames.FrameError as exc:
            reference = ("error", str(exc))
        try:
            fields = frames.parse_packet(blob)
            fast = (
                "ok",
                (fields.src_ip, fields.src_port, fields.dst_ip, fields.dst_port),
                fields.payload,
            )
        except frames.FrameError as exc:
            fast = ("error", str(exc))
        assert fast == reference


def _damage_corpus() -> list[bytes]:
    blob = clean_trace_bytes(table_prefixes=50, duration_s=30)
    records, _ = read_outcome(blob)
    return [record.data for record in records[:24]]


_DAMAGE_CORPUS = _damage_corpus()


def _busy_connection(events: int = 600):
    """A connection with same-instant events and interleaved ACKs."""
    builder = TraceBuilder().handshake()
    t = 20_000
    seq = 0
    for i in range(events):
        builder.data(t, seq, 100)
        seq += 100
        if i % 3 == 0:
            # Same-instant ACK: exercises the last-of-instant collapse.
            builder.ack(t, seq - 100)
        else:
            builder.ack(t + 40, seq - 100)
        t += 75
    builder.ack(t + 500, seq)
    return builder.build()


@pytest.mark.skipif(not series_np.AVAILABLE, reason="numpy not installed")
class TestSeriesBackendDifferential:
    """Forced numpy backend vs. the pure-python reference walk."""

    def _series_view(self, connection, backend):
        series = generate_series(
            connection, config=SeriesConfig(series_backend=backend)
        )
        return {
            "outstanding": series.outstanding.samples(),
            "ranges": {
                name: [(r.start, r.end) for r in entry.ranges]
                for name, entry in series.catalog._series.items()
            },
        }

    def test_busy_connection_identical(self):
        connection = _busy_connection()
        assert self._series_view(connection, "numpy") == self._series_view(
            connection, "python"
        )

    def test_corpus_connections_identical(self, clean_blob):
        from repro.analysis.profile import Trace

        trace = Trace.from_pcap(io.BytesIO(clean_blob), tolerant=True)
        checked = 0
        for connection in trace:
            if connection.profile is None:
                continue
            assert self._series_view(
                connection, "numpy"
            ) == self._series_view(connection, "python")
            checked += 1
        assert checked

    def test_auto_threshold_picks_python_for_small(self):
        from repro.analysis.series import AUTO_MIN_EVENTS, _resolve_backend

        assert _resolve_backend("auto", AUTO_MIN_EVENTS - 1) is None
        assert _resolve_backend("auto", AUTO_MIN_EVENTS) is series_np
        assert _resolve_backend("python", 10**9) is None
        assert _resolve_backend("numpy", 1) is series_np


def test_unknown_backend_rejected():
    from repro.analysis.series import _resolve_backend

    with pytest.raises(ValueError, match="series_backend"):
        _resolve_backend("fortran", 10)
