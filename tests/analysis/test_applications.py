"""Tests for the series-consumer applications (paper section V-D)."""

import random

import pytest

from repro.analysis.applications import (
    FLAVOR_NEWRENO,
    FLAVOR_TAHOE,
    FLAVOR_UNKNOWN,
    extract_flow_clock,
    infer_tcp_flavor,
)
from repro.analysis.tdat import analyze_pcap
from repro.bgp.sender_models import TimerBatchSender
from repro.bgp.table import generate_table
from repro.core.units import seconds
from repro.netsim.link import BernoulliLoss, WindowLoss
from repro.netsim.random import RandomStreams
from repro.netsim.simulator import Simulator
from repro.tcp.options import TcpConfig
from repro.workloads.scenarios import MonitoringSetup, RouterParams


def run_scenario(flavor="newreno", loss=None, sender_model_factory=None,
                 table_size=40_000, seed=61):
    from repro.netsim.link import CountedLoss

    sim = Simulator()
    streams = RandomStreams(seed)
    setup = MonitoringSetup(sim)
    table = generate_table(table_size, random.Random(seed))
    upstream_loss = None
    downstream_loss = None
    if loss == "upstream":
        upstream_loss = BernoulliLoss(0.04, streams.stream("loss"))
    elif loss == "downstream":
        downstream_loss = WindowLoss([(seconds(0.06), seconds(0.25))])
    elif loss == "single":
        # One isolated 1-packet loss at a large window: the clean
        # fast-recovery episode that separates Tahoe from Reno.
        downstream_loss = CountedLoss(0)
        sim.schedule(100_000, downstream_loss.arm, 1)
    elif loss == "double":
        # Two packets lost from one flight: a multi-hole recovery,
        # which NewReno alone handles within ~an RTT per hole.
        downstream_loss = CountedLoss(0)
        sim.schedule(100_000, downstream_loss.arm, 2)
    setup.add_router(
        RouterParams(
            name="r1",
            ip="10.61.0.1",
            table=table,
            tcp=TcpConfig(flavor=flavor),
            sender_model=(
                sender_model_factory(sim) if sender_model_factory else None
            ),
            upstream_loss=upstream_loss,
            downstream_loss=downstream_loss,
        )
    )
    setup.start()
    sim.run(until_us=seconds(600))
    report = analyze_pcap(setup.sniffer.sorted_records(), min_data_packets=2)
    return next(iter(report))


class TestFlowClock:
    def test_timer_sender_yields_clock(self):
        analysis = run_scenario(
            sender_model_factory=lambda sim: TimerBatchSender(sim, 200_000, 10),
        )
        clock = extract_flow_clock(analysis.series)
        assert clock.detected
        assert clock.period_us == pytest.approx(200_000, rel=0.15)
        assert clock.strength > 0.5
        assert clock.samples > 10

    def test_unpaced_sender_has_no_clock(self):
        analysis = run_scenario()
        clock = extract_flow_clock(analysis.series)
        assert not clock.detected


class TestFlavorInference:
    def test_lossless_connection_is_unknown(self):
        analysis = run_scenario()
        report = infer_tcp_flavor(analysis.connection, analysis.series)
        assert report.flavor == FLAVOR_UNKNOWN

    def test_newreno_on_clean_episode(self):
        """A two-hole loss at a large window: the clean NewReno case."""
        analysis = run_scenario(flavor="newreno", loss="double", table_size=80_000)
        report = infer_tcp_flavor(analysis.connection, analysis.series)
        assert report.fast_recovery_events >= 1
        assert report.flavor == FLAVOR_NEWRENO
        assert report.collapse_events == 0

    def test_tahoe_on_clean_episode(self):
        analysis = run_scenario(flavor="tahoe", loss="single", table_size=80_000)
        report = infer_tcp_flavor(analysis.connection, analysis.series)
        assert report.fast_recovery_events >= 1
        assert report.flavor == FLAVOR_TAHOE
        assert report.collapse_events >= 1

    def test_tahoe_never_inferred_for_reno_clean_episode(self):
        analysis = run_scenario(flavor="reno", loss="single", table_size=80_000)
        report = infer_tcp_flavor(analysis.connection, analysis.series)
        assert report.flavor != FLAVOR_TAHOE
        assert report.collapse_events == 0

    def test_noisy_losses_give_some_answer(self):
        """Under overlapping random losses the inference can degrade,
        but must stay within the window-based family and keep evidence."""
        analysis = run_scenario(flavor="newreno", loss="upstream")
        report = infer_tcp_flavor(analysis.connection, analysis.series)
        assert report.flavor in ("tahoe", "reno", "newreno", FLAVOR_UNKNOWN)
        assert isinstance(report.evidence, list)

    def test_evidence_recorded(self):
        analysis = run_scenario(flavor="newreno", loss="downstream")
        report = infer_tcp_flavor(analysis.connection, analysis.series)
        assert isinstance(report.evidence, list)
