"""Unit tests for knee detection, MCT and the problem detectors."""

import random

import pytest

from repro.analysis.ackshift import shift_acks
from repro.analysis.detectors import (
    detect_consecutive_losses,
    detect_long_keepalive_pauses,
    detect_timer_gaps,
    detect_zero_ack_bug,
)
from repro.analysis.knee import l_method_knee, plateau_value
from repro.analysis.mct import minimum_collection_time
from repro.analysis.series import generate_series
from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import Prefix, UpdateMessage
from repro.core.units import seconds

from tests.analysis.helpers import TraceBuilder
from tests.analysis.test_series_factors import timer_gap_connection


class TestKnee:
    def test_clear_knee(self):
        values = [10.0] * 20 + [100.0, 200.0, 300.0, 400.0]
        knee = l_method_knee(values)
        assert knee is not None
        assert 17 <= knee <= 21

    def test_plateau_value(self):
        values = sorted([200.0] * 15 + [950.0, 1800.0, 3600.0])
        knee = l_method_knee(values)
        assert plateau_value(values, knee) == pytest.approx(200.0)

    def test_degenerate_inputs(self):
        assert l_method_knee([]) is None
        assert l_method_knee([1.0, 2.0, 3.0]) is None
        assert plateau_value([1.0], None) is None

    def test_straight_line_has_low_confidence_knee(self):
        # A pure line has no meaningful knee; we only require no crash.
        values = [float(i) for i in range(30)]
        knee = l_method_knee(values)
        assert knee is None or 0 <= knee < 30


def make_update(*cidrs):
    return UpdateMessage(
        announced=tuple(Prefix.parse(c) for c in cidrs),
        attributes=PathAttributes.from_path([65001], "10.0.0.1"),
    )


class TestMct:
    def test_empty_stream(self):
        assert minimum_collection_time([]) is None

    def test_simple_burst(self):
        updates = [
            (seconds(1), make_update("10.0.0.0/8")),
            (seconds(2), make_update("10.1.0.0/16")),
            (seconds(3), make_update("10.2.0.0/16")),
        ]
        transfer = minimum_collection_time(updates, start_us=seconds(0.5))
        assert transfer.start_us == seconds(0.5)
        assert transfer.end_us == seconds(3)
        assert transfer.prefixes == 3
        assert transfer.ended_by == "stream-end"

    def test_duplicates_end_transfer(self):
        updates = [
            (seconds(i), make_update(f"10.{i}.0.0/16")) for i in range(1, 21)
        ]
        # Steady-state churn: the same prefixes re-announced.
        updates += [
            (seconds(21 + i), make_update(f"10.{(i % 3) + 1}.0.0/16"))
            for i in range(10)
        ]
        transfer = minimum_collection_time(updates)
        assert transfer.ended_by == "duplicates"
        assert transfer.end_us == seconds(20)
        assert transfer.prefixes == 20

    def test_idle_ends_transfer(self):
        updates = [
            (seconds(1), make_update("10.1.0.0/16")),
            (seconds(2), make_update("10.2.0.0/16")),
            (seconds(100), make_update("10.3.0.0/16")),  # an hour later...
        ]
        transfer = minimum_collection_time(updates, idle_timeout_us=seconds(30))
        assert transfer.ended_by == "idle"
        assert transfer.end_us == seconds(2)

    def test_withdraw_only_updates_are_not_duplicates(self):
        updates = [
            (seconds(1), make_update("10.1.0.0/16")),
            (seconds(2), UpdateMessage(withdrawn=(Prefix("10.9.0.0", 16),))),
            (seconds(3), make_update("10.2.0.0/16")),
        ]
        transfer = minimum_collection_time(updates)
        assert transfer.end_us == seconds(3)
        assert transfer.prefixes == 2


class TestTimerGapDetector:
    def test_detects_injected_timer(self):
        conn = timer_gap_connection(gap_us=200_000, flights=15, rtt=9_000)
        shift_acks(conn)
        series = generate_series(conn)
        report = detect_timer_gaps(series)
        assert report.detected
        # Inferred timer should land near the injected 200ms.
        assert report.timer_us == pytest.approx(200_000, rel=0.15)
        assert report.induced_delay_us > seconds(2)

    def test_no_false_positive_on_uniform_random_gaps(self):
        rng = random.Random(3)
        builder = TraceBuilder().handshake()
        t = 100_000
        seq = 0
        for _ in range(30):
            builder.data(t, seq, 1400)
            builder.ack(t + 1000, seq + 1400)
            seq += 1400
            t += rng.randint(30_000, 2_000_000)  # smooth spread, no mode
        conn = builder.build()
        shift_acks(conn)
        report = detect_timer_gaps(generate_series(conn))
        assert not report.detected

    def test_too_few_gaps(self):
        conn = timer_gap_connection(gap_us=200_000, flights=4)
        shift_acks(conn)
        report = detect_timer_gaps(generate_series(conn))
        assert not report.detected


class TestConsecutiveLossDetector:
    def lossy_connection(self, retransmissions):
        builder = TraceBuilder().handshake()
        # One flight seen at the tap, then the same bytes resent many
        # times (receiver-local blackout).
        for i in range(retransmissions):
            builder.data(20_000 + i * 100, i * 1400, 1400)
        builder.ack(21_500, 0)
        t = 400_000
        for i in range(retransmissions):
            builder.data(t + i * 100, i * 1400, 1400)
        builder.ack(t + 50_000, retransmissions * 1400)
        return builder.build()

    def test_detects_long_run(self):
        conn = self.lossy_connection(10)
        shift_acks(conn)
        report = detect_consecutive_losses(generate_series(conn))
        assert report.detected
        assert report.episodes == 1
        assert report.worst_run >= 10
        assert report.induced_delay_us > 100_000

    def test_below_threshold_not_flagged(self):
        conn = self.lossy_connection(3)
        shift_acks(conn)
        report = detect_consecutive_losses(generate_series(conn))
        assert not report.detected
        assert report.worst_run >= 3


class TestKeepalivePauseDetector:
    def test_long_keepalive_pause_detected(self):
        from repro.bgp.messages import KeepaliveMessage, encode_message

        ka = encode_message(KeepaliveMessage())
        builder = TraceBuilder().handshake()
        builder.data(20_000, 0, 1400)
        builder.ack(21_000, 1400)
        # 120 seconds with only keepalives every 30s.
        seq = 1400
        for i in range(4):
            t = seconds(30 * (i + 1))
            builder.data(t, seq, len(ka), payload=ka)
            builder.ack(t + 1000, seq + len(ka))
            seq += len(ka)
        builder.data(seconds(125), seq, 1400)
        builder.ack(seconds(126), seq + 1400)
        conn = builder.build()
        shift_acks(conn)
        series = generate_series(conn)
        report = detect_long_keepalive_pauses(series, conn)
        assert report.detected
        assert report.induced_delay_us > seconds(60)

    def test_data_in_pause_rejects_detection(self):
        builder = TraceBuilder().handshake()
        builder.data(20_000, 0, 1400)
        builder.ack(21_000, 1400)
        builder.data(seconds(30), 1400, 1400)  # real data, not keepalive
        builder.ack(seconds(31), 2800)
        builder.data(seconds(60), 2800, 1400)
        builder.ack(seconds(61), 4200)
        conn = builder.build()
        shift_acks(conn)
        report = detect_long_keepalive_pauses(generate_series(conn), conn)
        assert not report.detected


class TestZeroAckBugDetector:
    def test_detects_conflicting_series(self):
        builder = TraceBuilder().handshake()
        builder.data(20_000, 0, 1400)
        builder.data(20_100, 1400, 1400)
        builder.data(20_200, 4200, 1400)  # gap: upstream loss evidence
        builder.ack(21_000, 2800, window=0)  # zero window at the same time
        builder.data(seconds(2), 2800, 1400)  # late fill
        builder.ack(seconds(2) + 1000, 5600, window=65535)
        conn = builder.build()
        report = detect_zero_ack_bug(generate_series(conn))
        assert report.detected
        assert report.occurrences >= 1

    def test_clean_connection_not_flagged(self):
        conn = timer_gap_connection()
        report = detect_zero_ack_bug(generate_series(conn))
        assert not report.detected
