"""Tests for capture-void detection and exclusion (paper section II-A)."""

import random

from repro.analysis.tdat import analyze_pcap
from repro.analysis.voids import find_capture_voids
from repro.bgp.table import generate_table
from repro.core.units import seconds
from repro.netsim.simulator import Simulator
from repro.workloads.scenarios import MonitoringSetup, RouterParams

from tests.analysis.helpers import TraceBuilder


class TestVoidDetectorUnit:
    def test_clean_connection_no_void(self):
        builder = TraceBuilder().handshake()
        builder.data(20_000, 0, 1400)
        builder.data(20_200, 1400, 1400)
        builder.ack(21_000, 2800)
        report = find_capture_voids(builder.build())
        assert not report.detected
        assert report.phantom_bytes == 0

    def test_acked_but_never_seen_bytes_are_a_void(self):
        builder = TraceBuilder().handshake()
        builder.data(20_000, 0, 1400)
        # [1400, 2800) was transmitted and delivered but the sniffer
        # dropped it: the receiver acks straight through and the fill
        # never appears in the capture.
        builder.data(500_000, 2800, 1400)
        builder.ack(501_000, 4200)
        report = find_capture_voids(builder.build())
        assert report.detected
        assert report.phantom_bytes == 1400
        (window,) = report.void_windows.ranges
        assert window.start == 20_000
        assert window.end == 500_000

    def test_network_loss_is_not_a_void(self):
        """A real loss is eventually filled by a visible retransmission."""
        builder = TraceBuilder().handshake()
        builder.data(20_000, 0, 1400)
        builder.data(20_200, 2800, 1400)  # hole at [1400, 2800)
        builder.ack(21_000, 1400)
        builder.data(400_000, 1400, 1400)  # the fill IS captured
        builder.ack(401_000, 4200)
        report = find_capture_voids(builder.build())
        assert not report.detected

    def test_multiple_voids(self):
        builder = TraceBuilder().handshake()
        builder.data(20_000, 0, 1400)
        builder.data(100_000, 2800, 1400)  # void 1: [1400, 2800)
        builder.data(200_000, 5600, 1400)  # void 2: [4200, 5600)
        builder.ack(201_000, 7000)
        report = find_capture_voids(builder.build())
        assert report.detected
        assert report.phantom_bytes == 2800
        # The two hole windows abut at the middle packet and coalesce.
        assert report.void_windows.contains(50_000)
        assert report.void_windows.contains(150_000)


class TestVoidExclusionEndToEnd:
    def run_with_drop_window(self, drop_windows):
        sim = Simulator()
        setup = MonitoringSetup(sim, sniffer_drop_windows=drop_windows)
        table = generate_table(30_000, random.Random(51))
        setup.add_router(RouterParams(name="r1", ip="10.1.0.1", table=table))
        setup.start()
        sim.run(until_us=seconds(120))
        assert setup.collector.updates_archived == len(table.to_updates())
        report = analyze_pcap(setup.sniffer.sorted_records(), min_data_packets=2)
        return next(iter(report)), setup

    def test_sniffer_drops_detected_and_excluded(self):
        analysis, setup = self.run_with_drop_window([(30_000, 70_000)])
        assert setup.sniffer.dropped_records > 0
        voids = analysis.capture_voids
        assert voids.detected
        assert voids.phantom_bytes > 0
        # The void window covers the injected drop period.
        assert voids.void_windows.overlapping(30_000, 70_000)

    def test_clean_capture_not_flagged(self):
        analysis, setup = self.run_with_drop_window(None)
        assert not analysis.capture_voids.detected

    def test_exclusion_changes_ratios(self):
        from repro.analysis.factors import classify

        analysis, _ = self.run_with_drop_window([(30_000, 70_000)])
        with_exclusion = analysis.factors
        without_exclusion = classify(analysis.series, exclude=None)
        # The void period must not be attributed to any factor when
        # excluded; ratios are computed over a smaller period.
        assert (
            with_exclusion.analysis_period_us
            < without_exclusion.analysis_period_us
        )
