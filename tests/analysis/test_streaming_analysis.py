"""Streaming and parallel ``analyze_pcap`` must match the buffered run."""

import random

import pytest

from repro.analysis.profile import iter_connections
from repro.analysis.tdat import analyze_pcap, iter_analyze_pcap
from repro.bgp.table import generate_table
from repro.core.units import seconds
from repro.netsim.simulator import Simulator
from repro.workloads.scenarios import MonitoringSetup, RouterParams


@pytest.fixture(scope="module")
def records():
    """Three concurrent transfers: multiple interleaved connections."""
    sim = Simulator()
    setup = MonitoringSetup(sim)
    for i in range(3):
        table = generate_table(2_000 + 500 * i, random.Random(70 + i))
        setup.add_router(
            RouterParams(name=f"r{i}", ip=f"10.70.0.{i + 1}", table=table)
        )
    setup.start()
    sim.run(until_us=seconds(120))
    return setup.sniffer.sorted_records()


@pytest.fixture(scope="module")
def buffered(records):
    return analyze_pcap(records, min_data_packets=2)


def _fingerprint(report):
    """Everything a mode could plausibly perturb, per connection."""
    return {
        key: (
            analysis.factors.ratios,
            analysis.factors.analysis_period_us,
            len(analysis.labeling.retransmissions()),
            analysis.connection.profile.duration_us,
        )
        for key, analysis in report.analyses.items()
    }


class TestModeEquivalence:
    @pytest.mark.parametrize(
        "kwargs",
        [
            pytest.param({"streaming": True}, id="streaming"),
            pytest.param({"workers": 2}, id="parallel"),
            pytest.param(
                {"streaming": True, "workers": 2}, id="streaming-parallel"
            ),
        ],
    )
    def test_same_report_as_buffered(self, records, buffered, kwargs):
        report = analyze_pcap(records, min_data_packets=2, **kwargs)
        # Same connections, in the same (capture) order.
        assert list(report.analyses) == list(buffered.analyses)
        assert _fingerprint(report) == _fingerprint(buffered)
        assert report.skipped_connections == buffered.skipped_connections

    def test_iter_analyze_yields_every_connection(self, records, buffered):
        keys = {a.key for a in iter_analyze_pcap(records, min_data_packets=2)}
        assert keys == set(buffered.analyses)


class TestIterConnections:
    def test_streams_same_flows_as_trace(self, records, buffered):
        keys = [c.key for c in iter_connections(records)]
        assert set(buffered.analyses) <= set(keys)

    def test_flows_are_complete(self, records):
        for connection in iter_connections(records):
            if connection.profile is None:
                continue
            # Every streamed flow carries its whole packet history.
            assert connection.packets[0].index <= connection.packets[-1].index
            assert connection.profile.total_data_packets > 0
