"""Unit tests for series generation, step functions and factor vectors."""

import pytest

from repro.analysis.ackshift import shift_acks
from repro.analysis.factors import FACTORS, classify
from repro.analysis.labeling import label_connection
from repro.analysis.series import (
    SERIES_NAMES,
    SeriesConfig,
    StepFunction,
    generate_series,
)

from tests.analysis.helpers import TraceBuilder


def shifted_series(conn, **kwargs):
    """Run the ACK shift first, as the full T-DAT pipeline does."""
    shift_acks(conn)
    return generate_series(conn, **kwargs)


def timer_gap_connection(gap_us=200_000, flights=10, rtt=9_000):
    """A sender emitting one small flight per timer tick."""
    builder = TraceBuilder().handshake(d1=1000, d2=rtt - 1000)
    t = 100_000
    seq = 0
    for _ in range(flights):
        builder.data(t, seq, 1400)
        builder.data(t + 150, seq + 1400, 1400)
        builder.ack(t + 1000, seq + 2800)
        seq += 2800
        t += gap_us
    return builder.build()


def window_bound_connection(window=16384, rtt=10_000, rounds=12):
    """A sender filling the advertised window every round trip."""
    builder = TraceBuilder().handshake(d1=500, d2=rtt - 500)
    t = 100_000
    seq = 0
    for _ in range(rounds):
        offset = 0
        while offset + 1400 <= window:
            builder.data(t + offset // 14, seq + offset, 1400)
            offset += 1400
        builder.ack(t + 1200, seq + offset, window=window)
        seq += offset
        t += rtt
    return builder.build()


class TestStepFunction:
    def test_initial_value(self):
        fn = StepFunction(initial=7)
        assert fn.value_at(100) == 7

    def test_value_lookup(self):
        fn = StepFunction()
        fn.add(10, 5)
        fn.add(20, 0)
        assert fn.value_at(9) == 0
        assert fn.value_at(10) == 5
        assert fn.value_at(19) == 5
        assert fn.value_at(25) == 0

    def test_same_time_overwrites(self):
        fn = StepFunction()
        fn.add(10, 5)
        fn.add(10, 8)
        assert fn.value_at(10) == 8

    def test_time_order_enforced(self):
        fn = StepFunction()
        fn.add(10, 5)
        with pytest.raises(ValueError):
            fn.add(5, 1)

    def test_ranges_where(self):
        fn = StepFunction()
        fn.add(10, 5)
        fn.add(20, 0)
        fn.add(30, 5)
        ranges = fn.ranges_where(lambda v: v > 0, 0, 40)
        assert [(r.start, r.end) for r in ranges] == [(10, 20), (30, 40)]

    def test_ranges_where_empty_window(self):
        fn = StepFunction()
        assert len(fn.ranges_where(lambda v: True, 10, 10)) == 0


class TestSeriesGeneration:
    def test_catalog_has_expected_series(self):
        conn = timer_gap_connection()
        result = generate_series(conn)
        for name in SERIES_NAMES:
            assert name in result.catalog, f"missing series {name}"

    def test_transmission_is_small_fraction(self):
        conn = timer_gap_connection()
        result = generate_series(conn)
        period = result.window.duration
        assert result.get("Transmission").size() < 0.05 * period

    def test_gaps_complement_transmission(self):
        conn = timer_gap_connection()
        result = generate_series(conn)
        gaps = result.get("InterTransmissionGaps")
        tx = result.get("Transmission")
        total = gaps.size() + tx.ranges.clip(
            result.window.start, result.window.end
        ).size()
        assert total == result.window.duration

    def test_send_app_limited_catches_timer_gaps(self):
        conn = timer_gap_connection(gap_us=200_000, flights=10)
        result = generate_series(conn)
        idle = result.get("SendAppLimited")
        # Nine inter-flight gaps of roughly (200ms - rtt).
        assert len(idle) >= 8
        ratio = idle.delay_ratio(result.window.duration)
        assert ratio > 0.8

    def test_window_bound_connection_is_adv_bound(self):
        conn = window_bound_connection()
        result = shifted_series(conn)
        adv = result.get("AdvBndOut")
        assert adv.delay_ratio(result.window.duration) > 0.5
        # 16KB max window minus outstanding is always < 3 MSS here and
        # the window sits at its max: the "large window" bound.
        large = result.get("LargeAdvBndOut")
        assert large.delay_ratio(result.window.duration) > 0.5
        assert result.get("SendAppLimited").delay_ratio(
            result.window.duration
        ) < 0.2

    def test_zero_window_series(self):
        builder = TraceBuilder().handshake()
        builder.data(20_000, 0, 1400)
        builder.ack(21_000, 1400, window=0)
        builder.ack(500_000, 1400, window=65535)
        builder.data(501_000, 1400, 1400)
        builder.ack(502_000, 2800)
        conn = builder.build()
        result = generate_series(conn)
        zero = result.get("ZeroAdvWindow")
        assert zero.size() >= 400_000

    def test_explicit_window_clips(self):
        conn = timer_gap_connection()
        result = generate_series(conn, window=(100_000, 300_000))
        assert result.window.duration == 200_000

    def test_requires_finalized_connection(self):
        from repro.analysis.profile import Connection

        conn = Connection(("a", 1, "b", 2))
        with pytest.raises(ValueError):
            generate_series(conn)


class TestFactors:
    def test_timer_connection_is_sender_app_limited(self):
        conn = timer_gap_connection()
        report = classify(generate_series(conn))
        assert report.major_groups() == ["sender"]
        assert report.major_factors()["sender"] == "bgp_sender_app"

    def test_window_connection_is_receiver_limited(self):
        conn = window_bound_connection()
        report = classify(shifted_series(conn))
        assert "receiver" in report.major_groups()
        assert report.major_factors()["receiver"] == "tcp_advertised_window"

    def test_vector_shapes(self):
        report = classify(generate_series(timer_gap_connection()))
        assert len(report.vector) == len(FACTORS) == 8
        assert len(report.group_vector) == 3
        assert all(0.0 <= r <= 1.0 for r in report.vector)
        assert all(0.0 <= r <= 1.0 for r in report.group_vector)

    def test_group_is_union_not_sum(self):
        report = classify(shifted_series(window_bound_connection()))
        sender_sum = sum(
            report.ratios[name]
            for name, (_, group) in FACTORS.items()
            if group == "sender"
        )
        assert report.group_ratios["sender"] <= sender_sum + 1e-9

    def test_unknown_when_nothing_major(self):
        builder = TraceBuilder().handshake()
        builder.data(20_000, 0, 1400)
        builder.ack(21_000, 1400)
        report = classify(generate_series(builder.build()))
        assert isinstance(report.is_unknown(), bool)

    def test_threshold_sensitivity(self):
        report = classify(generate_series(timer_gap_connection()))
        # The paper tests thresholds 0.3..0.5 without qualitative change.
        for threshold in (0.3, 0.4, 0.5):
            assert report.major_groups(threshold) == ["sender"]
