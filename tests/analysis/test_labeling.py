"""Unit tests for retransmission / out-of-sequence classification."""

from repro.analysis.labeling import (
    KIND_DOWNSTREAM,
    KIND_NEW,
    KIND_REORDERING,
    KIND_UPSTREAM,
    label_connection,
)

from tests.analysis.helpers import TraceBuilder


def in_order_connection():
    builder = TraceBuilder().handshake()
    t = 20_000
    for i in range(6):
        builder.data(t + i * 200, i * 1400, 1400)
    builder.ack(30_000, 6 * 1400)
    return builder.build()


class TestCleanStream:
    def test_all_new(self):
        result = label_connection(in_order_connection())
        assert result.count(KIND_NEW) == 6
        assert not result.retransmissions()


class TestDownstreamLoss:
    def test_seen_bytes_resent(self):
        """A segment seen at the tap and later resent = downstream loss."""
        builder = TraceBuilder().handshake()
        builder.data(20_000, 0, 1400)
        builder.data(20_200, 1400, 1400)  # seen at tap, lost after tap
        builder.ack(21_000, 1400)  # receiver only got the first
        builder.data(320_000, 1400, 1400)  # RTO retransmission
        builder.ack(321_000, 2800)
        conn = builder.build()
        result = label_connection(conn)
        assert result.count(KIND_DOWNSTREAM) == 1
        label = result.by_kind(KIND_DOWNSTREAM)[0]
        assert label.trigger_time_us == 20_200  # original transmission
        assert label.recovery_time_us == 321_000

    def test_recovery_covers_ack(self):
        builder = TraceBuilder().handshake()
        builder.data(20_000, 0, 1400)
        builder.ack(21_000, 0)  # dupack-ish; no progress
        builder.data(320_000, 0, 1400)  # resend
        builder.ack(321_000, 1400)
        result = label_connection(builder.build())
        (retx,) = result.retransmissions()
        assert retx.kind == KIND_DOWNSTREAM
        assert retx.recovery_time_us == 321_000


class TestUpstreamLoss:
    def test_unseen_gap_filled_late(self):
        """A hole at the tap filled much later = upstream loss."""
        builder = TraceBuilder().handshake()
        builder.data(20_000, 0, 1400)
        # Segment [1400, 2800) was dropped before the tap: never seen.
        builder.data(20_400, 2800, 1400)
        builder.data(20_600, 4200, 1400)
        builder.ack(21_000, 1400)
        builder.ack(21_100, 1400)
        builder.ack(21_200, 1400)
        builder.data(50_000, 1400, 1400)  # retransmission fills the hole
        builder.ack(51_000, 5600)
        result = label_connection(builder.build())
        assert result.count(KIND_UPSTREAM) == 1
        label = result.by_kind(KIND_UPSTREAM)[0]
        # Triggered when the gap became visible (first packet past it).
        assert label.trigger_time_us == 20_400
        assert label.recovery_time_us == 51_000

    def test_reordering_not_loss(self):
        """A gap filled immediately by an earlier-sent packet = reordering."""
        builder = TraceBuilder().handshake()
        builder.data(20_000, 0, 1400, ip_id=100)
        builder.data(20_100, 2800, 1400, ip_id=102)  # overtook its sibling
        builder.data(20_120, 1400, 1400, ip_id=101)  # arrives 20us later
        builder.ack(21_000, 4200)
        result = label_connection(builder.build())
        assert result.count(KIND_REORDERING) == 1
        assert result.count(KIND_UPSTREAM) == 0

    def test_late_fill_is_loss_even_with_early_ip_id(self):
        builder = TraceBuilder().handshake()
        builder.data(20_000, 0, 1400, ip_id=100)
        builder.data(20_100, 2800, 1400, ip_id=102)
        # Arrives 300ms later: beyond any plausible reordering window.
        builder.data(320_000, 1400, 1400, ip_id=101)
        builder.ack(321_000, 4200)
        result = label_connection(builder.build())
        assert result.count(KIND_UPSTREAM) == 1

    def test_quick_fill_with_later_ip_id_is_retransmission(self):
        """Fast retransmit can fill a gap quickly, but its IP ID is new."""
        builder = TraceBuilder().handshake()
        builder.data(20_000, 0, 1400, ip_id=100)
        builder.data(20_100, 2800, 1400, ip_id=102)
        builder.data(20_120, 1400, 1400, ip_id=110)  # sent after the gap
        builder.ack(21_000, 4200)
        result = label_connection(builder.build())
        assert result.count(KIND_UPSTREAM) == 1


class TestMixed:
    def test_counts_are_disjoint(self):
        builder = TraceBuilder().handshake()
        builder.data(20_000, 0, 1400)
        builder.data(20_100, 1400, 1400)
        builder.data(20_200, 4200, 1400)  # gap at [2800, 4200)
        builder.ack(21_000, 2800)
        builder.data(50_000, 2800, 1400)  # upstream-loss fill
        builder.data(51_000, 4200, 1400)  # downstream-style resend
        builder.ack(52_000, 5600)
        result = label_connection(builder.build())
        total = sum(
            result.count(k)
            for k in (KIND_NEW, KIND_UPSTREAM, KIND_DOWNSTREAM, KIND_REORDERING)
        )
        assert total == len(result.labels) == 5
        assert result.count(KIND_UPSTREAM) == 1
        assert result.count(KIND_DOWNSTREAM) == 1
