"""Builders for hand-crafted traces used by analysis unit tests."""

from repro.analysis.profile import Connection, TracePacket, canonical_key
from repro.wire.tcpw import ACK, PSH, SYN

SENDER = "10.0.0.1"
RECEIVER = "10.0.0.2"
SPORT = 40000
DPORT = 179


class TraceBuilder:
    """Builds a Connection packet-by-packet with relative sequences.

    The sender's ISN is 1000 and the receiver's 2000, so relative data
    byte 0 is wire sequence 1001.
    """

    def __init__(self):
        self.connection = Connection(
            canonical_key(SENDER, SPORT, RECEIVER, DPORT)
        )
        self._index = 0
        self._sender_ip_id = 0
        self._receiver_ip_id = 0

    def _next(self, src):
        self._index += 1
        if src == SENDER:
            self._sender_ip_id += 1
            return self._index, self._sender_ip_id
        self._receiver_ip_id += 1
        return self._index, self._receiver_ip_id

    def syn(self, t):
        index, ip_id = self._next(SENDER)
        self.connection.add(TracePacket(
            index=index, timestamp_us=t, src_ip=SENDER, src_port=SPORT,
            dst_ip=RECEIVER, dst_port=DPORT, seq=1000, ack=0, flags=SYN,
            window=65535, payload_len=0, wire_len=58, ip_id=ip_id,
            mss_option=1400,
        ))
        return self

    def synack(self, t, window=65535):
        index, ip_id = self._next(RECEIVER)
        self.connection.add(TracePacket(
            index=index, timestamp_us=t, src_ip=RECEIVER, src_port=DPORT,
            dst_ip=SENDER, dst_port=SPORT, seq=2000, ack=1001,
            flags=SYN | ACK, window=window, payload_len=0, wire_len=58,
            ip_id=ip_id, mss_option=1400,
        ))
        return self

    def handshake_ack(self, t, window=65535):
        index, ip_id = self._next(SENDER)
        self.connection.add(TracePacket(
            index=index, timestamp_us=t, src_ip=SENDER, src_port=SPORT,
            dst_ip=RECEIVER, dst_port=DPORT, seq=1001, ack=2001, flags=ACK,
            window=window, payload_len=0, wire_len=54, ip_id=ip_id,
        ))
        return self

    def handshake(self, t0=0, d1=1000, d2=8000):
        """SYN at t0, SYN/ACK d1 later, final ACK d2 after that."""
        return self.syn(t0).synack(t0 + d1).handshake_ack(t0 + d1 + d2)

    def data(self, t, rel_seq, length, payload=None, ip_id=None):
        index, auto_ip_id = self._next(SENDER)
        self.connection.add(TracePacket(
            index=index, timestamp_us=t, src_ip=SENDER, src_port=SPORT,
            dst_ip=RECEIVER, dst_port=DPORT, seq=1001 + rel_seq, ack=2001,
            flags=ACK | PSH, window=65535, payload_len=length,
            wire_len=54 + length, ip_id=ip_id if ip_id is not None else auto_ip_id,
            payload=payload if payload is not None else bytes(length),
        ))
        return self

    def ack(self, t, rel_ack, window=65535):
        index, ip_id = self._next(RECEIVER)
        self.connection.add(TracePacket(
            index=index, timestamp_us=t, src_ip=RECEIVER, src_port=DPORT,
            dst_ip=SENDER, dst_port=SPORT, seq=2001, ack=1001 + rel_ack,
            flags=ACK, window=window, payload_len=0, wire_len=54,
            ip_id=ip_id,
        ))
        return self

    def build(self):
        self.connection.finalize()
        return self.connection
