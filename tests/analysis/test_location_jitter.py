"""Tests for sniffer-location inference and link jitter robustness."""

import random

import pytest

from repro.analysis.profile import Trace, infer_sniffer_location
from repro.analysis.tdat import analyze_pcap
from repro.bgp.table import generate_table
from repro.core.units import seconds
from repro.netsim.link import Link
from repro.netsim.packet import Packet
from repro.netsim.random import RandomStreams
from repro.netsim.simulator import Simulator
from repro.workloads.scenarios import MonitoringSetup, RouterParams


def capture(tap_location, jitter=False, seed=85):
    sim = Simulator()
    setup = MonitoringSetup(sim)
    table = generate_table(10_000, random.Random(seed))
    setup.add_router(
        RouterParams(
            name="r1", ip="10.85.0.1", table=table, tap_location=tap_location
        )
    )
    setup.start()
    sim.run(until_us=seconds(120))
    return setup.sniffer.sorted_records()


class TestLocationInference:
    def test_receiver_side_tap(self):
        records = capture("receiver")
        connection = next(iter(Trace.from_pcap(records)))
        assert infer_sniffer_location(connection) == "receiver"

    def test_sender_side_tap(self):
        records = capture("sender")
        connection = next(iter(Trace.from_pcap(records)))
        assert infer_sniffer_location(connection) == "sender"

    def test_unfinalized_connection_rejected(self):
        from repro.analysis.profile import Connection

        with pytest.raises(ValueError):
            infer_sniffer_location(Connection(("a", 1, "b", 2)))


class TestLinkJitter:
    def make_link(self, sim, sink, jitter_us, rng):
        return Link(
            sim, "j", bandwidth_bps=8_000_000, propagation_delay_us=1_000,
            deliver=sink.append, jitter_us=jitter_us, jitter_rng=rng,
        )

    def test_jitter_requires_rng(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, "j", 1e6, 0, deliver=print, jitter_us=100)

    def test_negative_jitter_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, "j", 1e6, 0, deliver=print, jitter_us=-1,
                 jitter_rng=random.Random(1))

    def test_jitter_delays_within_bounds(self):
        sim = Simulator()
        arrivals = []
        link = Link(
            sim, "j", bandwidth_bps=8_000_000, propagation_delay_us=1_000,
            deliver=lambda p: arrivals.append(sim.now),
            jitter_us=500, jitter_rng=random.Random(3),
        )
        for _ in range(50):
            link.send(Packet(src="a", dst="b", payload=None, wire_length=100))
        sim.run()
        # Each packet: 100us serialization slot + 1000us base + <=500us.
        assert len(arrivals) == 50
        spread = {a - (i + 1) * 100 for i, a in enumerate(arrivals)}
        assert min(spread) >= 1_000
        assert max(spread) <= 1_500 + 500  # FIFO hold-back can add more

    def test_jitter_never_reorders(self):
        sim = Simulator()
        order = []
        link = Link(
            sim, "j", bandwidth_bps=80_000_000, propagation_delay_us=100,
            deliver=lambda p: order.append(p.packet_id),
            jitter_us=2_000, jitter_rng=random.Random(9),
        )
        packets = [
            Packet(src="a", dst="b", payload=None, wire_length=100)
            for _ in range(100)
        ]
        for packet in packets:
            link.send(packet)
        sim.run()
        assert order == [p.packet_id for p in packets]

    def test_analysis_robust_under_jitter(self):
        """RTT estimates and factor groups survive 20% RTT jitter."""
        sim = Simulator()
        streams = RandomStreams(86)
        setup = MonitoringSetup(sim)
        table = generate_table(20_000, random.Random(86))
        handle = setup.add_router(
            RouterParams(name="r1", ip="10.86.0.1", table=table)
        )
        # Retrofit jitter onto the WAN links (both directions).
        for link in (handle.wan_link, handle.ack_upstream_link):
            link.jitter_us = 2_000
            link._jitter_rng = streams.stream(f"jitter-{link.name}")
        setup.start()
        sim.run(until_us=seconds(120))
        report = analyze_pcap(setup.sniffer.sorted_records(), min_data_packets=2)
        analysis = next(iter(report))
        profile = analysis.connection.profile
        assert 7_000 < profile.rtt_us < 16_000
        assert infer_sniffer_location(analysis.connection) == "receiver"
