"""Tests for RFC 7323 window scaling, end to end through the analyzer."""

import random

import pytest

from repro.analysis.tdat import analyze_pcap
from repro.bgp.table import generate_table
from repro.core.units import seconds
from repro.netsim.simulator import Simulator
from repro.tcp.options import TcpConfig
from repro.tcp.socket import connect_pair
from repro.workloads.scenarios import MonitoringSetup, RouterParams

from tests.tcp.helpers import Net, collect_all


class TestNegotiation:
    def pair(self, client_scale, server_scale):
        sim = Simulator()
        net = Net(sim)
        client, server = connect_pair(
            sim, net.a, net.b, 40000, 179,
            client_config=TcpConfig(window_scale=client_scale),
            server_config=TcpConfig(
                window_scale=server_scale, recv_buffer_bytes=512 * 1024
            ),
        )
        sim.run(until_us=seconds(1))
        return client, server

    def test_both_sides_negotiate(self):
        client, server = self.pair(2, 3)
        assert client.send_window_scale == 2
        assert client.recv_window_scale == 3
        assert server.send_window_scale == 3
        assert server.recv_window_scale == 2

    def test_one_sided_offer_disables(self):
        client, server = self.pair(2, 0)
        assert client.send_window_scale == 0
        assert client.recv_window_scale == 0
        assert server.send_window_scale == 0

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            TcpConfig(window_scale=15)


class TestScaledTransfer:
    def test_window_beyond_64k_usable(self):
        """A 512KB receive buffer only helps if scaling is negotiated."""

        def completion_time(scale):
            sim = Simulator()
            net = Net(sim, delay_us=30_000)  # 60ms+ RTT: BDP >> 64KB
            payload = bytes(2_000_000)
            received = bytearray()
            done = []
            client, server = connect_pair(
                sim, net.a, net.b, 40000, 179,
                client_config=TcpConfig(
                    window_scale=scale, initial_ssthresh_bytes=10**9
                ),
                server_config=TcpConfig(
                    window_scale=scale, recv_buffer_bytes=512 * 1024
                ),
                on_established_client=lambda ep: ep.send(payload),
            )

            def on_data(ep):
                received.extend(ep.read())
                if len(received) >= len(payload) and not done:
                    done.append(sim.now)

            server.on_data = on_data
            sim.run(until_us=seconds(600))
            assert len(received) == len(payload)
            return done[0]

        scaled = completion_time(scale=4)
        unscaled = completion_time(scale=0)
        # Without scaling, throughput caps at 65535/RTT; with it the
        # full buffer is usable, so the transfer is much faster.
        assert scaled < unscaled * 0.6

    def test_peer_window_exceeds_16_bits(self):
        sim = Simulator()
        net = Net(sim)
        received = bytearray()
        client, server = connect_pair(
            sim, net.a, net.b, 40000, 179,
            client_config=TcpConfig(window_scale=4),
            server_config=TcpConfig(
                window_scale=4, recv_buffer_bytes=512 * 1024
            ),
            # Data must flow: the SYN/SYN-ACK windows are unscaled per
            # RFC 7323, so only post-handshake ACKs carry scaled values.
            on_established_client=lambda ep: ep.send(bytes(200_000)),
        )
        collect_all(server, received)
        sim.run(until_us=seconds(30))
        assert len(received) == 200_000
        assert client.sender.peer_window > 65535


class TestAnalyzerScaling:
    def test_profile_sees_scaled_windows(self):
        sim = Simulator()
        setup = MonitoringSetup(
            sim,
            collector_tcp=TcpConfig(
                window_scale=3, recv_buffer_bytes=256 * 1024
            ),
        )
        table = generate_table(60_000, random.Random(91))
        setup.add_router(
            RouterParams(
                name="r1",
                ip="10.91.0.1",
                table=table,
                tcp=TcpConfig(window_scale=3),
                upstream_delay_us=15_000,
            )
        )
        setup.start()
        sim.run(until_us=seconds(120))
        report = analyze_pcap(setup.sniffer.sorted_records(), min_data_packets=2)
        analysis = next(iter(report))
        profile = analysis.connection.profile
        # The analyzer recovered the true (scaled) window, not the raw
        # 16-bit field value.
        assert profile.max_advertised_window > 65535
        assert profile.max_advertised_window <= 256 * 1024

    def test_unscaled_trace_unchanged(self):
        sim = Simulator()
        setup = MonitoringSetup(sim)
        table = generate_table(5_000, random.Random(92))
        setup.add_router(RouterParams(name="r1", ip="10.92.0.1", table=table))
        setup.start()
        sim.run(until_us=seconds(60))
        report = analyze_pcap(setup.sniffer.sorted_records(), min_data_packets=2)
        analysis = next(iter(report))
        assert analysis.connection.profile.max_advertised_window <= 65535
