"""Unit tests for Tahoe / Reno / NewReno congestion control."""

import pytest

from repro.tcp.congestion import NewReno, Reno, Tahoe, make_congestion_control

MSS = 1000


class TestFactory:
    def test_known_flavors(self):
        assert isinstance(make_congestion_control("tahoe", MSS), Tahoe)
        assert isinstance(make_congestion_control("reno", MSS), Reno)
        assert isinstance(make_congestion_control("newreno", MSS), NewReno)

    def test_unknown_flavor(self):
        with pytest.raises(ValueError):
            make_congestion_control("cubic", MSS)

    def test_bad_mss(self):
        with pytest.raises(ValueError):
            Reno(0)

    def test_initial_window(self):
        cc = Reno(MSS, initial_cwnd_mss=4, initial_ssthresh_bytes=32000)
        assert cc.cwnd == 4 * MSS
        assert cc.ssthresh == 32000


class TestSlowStartAndAvoidance:
    def test_slow_start_doubles_per_rtt(self):
        cc = Reno(MSS, initial_cwnd_mss=2, initial_ssthresh_bytes=10**9)
        # ACK a full window's worth: cwnd should double.
        for _ in range(2):
            cc.on_new_ack(MSS)
        assert cc.cwnd == 4 * MSS

    def test_congestion_avoidance_linear(self):
        cc = Reno(MSS, initial_cwnd_mss=10, initial_ssthresh_bytes=10 * MSS)
        # One window of ACKs grows cwnd by about one MSS.
        for _ in range(10):
            cc.on_new_ack(MSS)
        assert 10 * MSS < cc.cwnd <= 11 * MSS

    def test_timeout_collapses_to_one_mss(self):
        cc = Reno(MSS, initial_cwnd_mss=10)
        cc.on_timeout(flight_size=10 * MSS)
        assert cc.cwnd == MSS
        assert cc.ssthresh == 5 * MSS

    def test_timeout_ssthresh_floor(self):
        cc = Reno(MSS)
        cc.on_timeout(flight_size=MSS)
        assert cc.ssthresh == 2 * MSS


class TestTahoe:
    def test_triple_dupack_collapses(self):
        cc = Tahoe(MSS, initial_cwnd_mss=8)
        should_retransmit = cc.on_triple_dupack(8 * MSS, recovery_point=8000)
        assert should_retransmit
        assert cc.cwnd == MSS
        assert cc.ssthresh == 4 * MSS
        assert not cc.in_fast_recovery

    def test_no_inflation(self):
        cc = Tahoe(MSS)
        cc.on_triple_dupack(4 * MSS, 4000)
        before = cc.cwnd
        cc.on_dupack_in_recovery()
        assert cc.cwnd == before


class TestReno:
    def test_fast_recovery_halves(self):
        cc = Reno(MSS, initial_cwnd_mss=8)
        assert cc.on_triple_dupack(8 * MSS, recovery_point=8000)
        assert cc.in_fast_recovery
        assert cc.ssthresh == 4 * MSS
        assert cc.cwnd == 4 * MSS + 3 * MSS

    def test_dupack_inflation(self):
        cc = Reno(MSS, initial_cwnd_mss=8)
        cc.on_triple_dupack(8 * MSS, 8000)
        before = cc.cwnd
        cc.on_dupack_in_recovery()
        assert cc.cwnd == before + MSS

    def test_exit_on_first_new_ack(self):
        cc = Reno(MSS, initial_cwnd_mss=8)
        cc.on_triple_dupack(8 * MSS, 8000)
        assert cc.on_recovery_ack(2000) == "exit"
        assert not cc.in_fast_recovery
        assert cc.cwnd == cc.ssthresh

    def test_second_triple_dupack_ignored_in_recovery(self):
        cc = Reno(MSS, initial_cwnd_mss=8)
        assert cc.on_triple_dupack(8 * MSS, 8000)
        assert not cc.on_triple_dupack(8 * MSS, 8000)

    def test_recovery_ack_when_not_in_recovery(self):
        assert Reno(MSS).on_recovery_ack(100) == "ignore"


class TestNewReno:
    def test_partial_ack_stays_in_recovery(self):
        cc = NewReno(MSS, initial_cwnd_mss=8)
        cc.on_triple_dupack(8 * MSS, recovery_point=8000)
        assert cc.on_recovery_ack(4000) == "partial"
        assert cc.in_fast_recovery

    def test_full_ack_exits(self):
        cc = NewReno(MSS, initial_cwnd_mss=8)
        cc.on_triple_dupack(8 * MSS, recovery_point=8000)
        assert cc.on_recovery_ack(8000) == "exit"
        assert not cc.in_fast_recovery
        assert cc.cwnd == cc.ssthresh

    def test_partial_ack_deflates(self):
        cc = NewReno(MSS, initial_cwnd_mss=16)
        cc.on_triple_dupack(16 * MSS, recovery_point=16000)
        before = cc.cwnd
        cc.on_recovery_ack(4000)
        assert cc.cwnd == before - MSS

    def test_no_growth_during_recovery(self):
        cc = NewReno(MSS, initial_cwnd_mss=8)
        cc.on_triple_dupack(8 * MSS, 8000)
        before = cc.cwnd
        cc.on_new_ack(MSS)
        assert cc.cwnd == before
