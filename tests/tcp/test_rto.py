"""Unit tests for the RTT estimator and RTO computation."""

import pytest

from repro.core.units import seconds
from repro.tcp.rto import RttEstimator


class TestRttEstimator:
    def test_initial_rto(self):
        est = RttEstimator(initial_rto_us=seconds(1))
        assert est.rto_us == seconds(1)

    def test_first_sample_sets_srtt(self):
        est = RttEstimator()
        est.on_rtt_sample(100_000)
        assert est.srtt_us == 100_000
        assert est.rttvar_us == 50_000
        # RTO = SRTT + 4*RTTVAR = 100ms + 200ms = 300ms.
        assert est.rto_us == 300_000

    def test_smoothing_converges(self):
        est = RttEstimator(min_rto_us=1_000)
        for _ in range(100):
            est.on_rtt_sample(50_000)
        assert abs(est.srtt_us - 50_000) < 1
        # Variance decays; RTO approaches SRTT + max(4*var, 1ms).
        assert est.rto_us < 60_000

    def test_rto_floor(self):
        est = RttEstimator(min_rto_us=seconds(0.2))
        for _ in range(50):
            est.on_rtt_sample(1_000)
        assert est.rto_us >= seconds(0.2)

    def test_rto_ceiling(self):
        est = RttEstimator(max_rto_us=seconds(60))
        est.on_rtt_sample(seconds(30))
        for _ in range(10):
            est.on_timeout()
        assert est.rto_us == seconds(60)

    def test_backoff_doubles(self):
        est = RttEstimator(min_rto_us=1_000, max_rto_us=seconds(120))
        est.on_rtt_sample(100_000)
        base = est.rto_us
        est.on_timeout()
        assert est.rto_us == 2 * base
        est.on_timeout()
        assert est.rto_us == 4 * base

    def test_aggressive_backoff_factor(self):
        est = RttEstimator(
            min_rto_us=1_000, max_rto_us=seconds(120), backoff_factor=4.0
        )
        est.on_rtt_sample(100_000)
        base = est.rto_us
        est.on_timeout()
        est.on_timeout()
        assert est.rto_us == 16 * base

    def test_sample_resets_backoff(self):
        est = RttEstimator(min_rto_us=1_000)
        est.on_rtt_sample(100_000)
        est.on_timeout()
        est.on_timeout()
        est.on_rtt_sample(100_000)
        assert est.backoff_exponent == 0

    def test_reset_backoff(self):
        est = RttEstimator()
        est.on_timeout()
        est.reset_backoff()
        assert est.backoff_exponent == 0

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            RttEstimator().on_rtt_sample(-1)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            RttEstimator(min_rto_us=0)
        with pytest.raises(ValueError):
            RttEstimator(min_rto_us=100, max_rto_us=50)
        with pytest.raises(ValueError):
            RttEstimator(backoff_factor=0.5)

    def test_sample_counter(self):
        est = RttEstimator()
        est.on_rtt_sample(1000)
        est.on_rtt_sample(1000)
        assert est.samples == 2
