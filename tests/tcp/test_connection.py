"""Integration tests: TCP endpoints over the simulated network."""

import pytest

from repro.core.units import seconds
from repro.netsim.link import CountedLoss, WindowLoss
from repro.netsim.simulator import Simulator
from repro.tcp.options import TcpConfig
from repro.tcp.socket import TcpState, connect_pair

from tests.tcp.helpers import Net, collect_all


def run_transfer(sim, net, payload, client_config=None, server_config=None):
    """Handshake + one-way transfer from client(a) to server(b)."""
    received = bytearray()

    def on_established(ep):
        ep.send(payload)

    client, server = connect_pair(
        sim, net.a, net.b, 40000, 179,
        client_config=client_config, server_config=server_config,
        on_established_client=on_established,
    )
    collect_all(server, received)
    sim.run(until_us=seconds(600))
    return client, server, bytes(received)


class TestHandshake:
    def test_three_way_handshake(self):
        sim = Simulator()
        net = Net(sim)
        client, server = connect_pair(sim, net.a, net.b, 40000, 179)
        sim.run(until_us=seconds(1))
        assert client.state is TcpState.ESTABLISHED
        assert server.state is TcpState.ESTABLISHED
        # Client measured the handshake RTT (2 * 5ms one-way).
        assert client.sender.rtt.srtt_us == pytest.approx(10_000, abs=2_000)

    def test_mss_negotiation(self):
        sim = Simulator()
        net = Net(sim)
        client, server = connect_pair(
            sim, net.a, net.b, 40000, 179,
            client_config=TcpConfig(mss=1400),
            server_config=TcpConfig(mss=536),
        )
        sim.run(until_us=seconds(1))
        assert client.effective_mss == 536
        assert server.effective_mss == 536

    def test_syn_retransmission_on_loss(self):
        sim = Simulator()
        net = Net(sim, loss_up=CountedLoss(1))  # first SYN dies
        client, server = connect_pair(sim, net.a, net.b, 40000, 179)
        sim.run(until_us=seconds(5))
        assert client.state is TcpState.ESTABLISHED
        assert server.state is TcpState.ESTABLISHED

    def test_connect_twice_rejected(self):
        sim = Simulator()
        net = Net(sim)
        client, _ = connect_pair(sim, net.a, net.b, 40000, 179)
        with pytest.raises(RuntimeError):
            client.connect()


class TestDataTransfer:
    def test_small_transfer(self):
        sim = Simulator()
        net = Net(sim)
        _, _, received = run_transfer(sim, net, b"hello bgp world")
        assert received == b"hello bgp world"

    def test_large_transfer_integrity(self):
        sim = Simulator()
        net = Net(sim)
        payload = bytes(i % 251 for i in range(300_000))
        _, _, received = run_transfer(sim, net, payload)
        assert received == payload

    def test_transfer_faster_with_bigger_window(self):
        payload = bytes(500_000)
        small = _completion_time(payload, window=16384)
        large = _completion_time(payload, window=65535)
        assert large < small

    def test_send_before_established_rejected(self):
        sim = Simulator()
        net = Net(sim)
        client, _ = connect_pair(sim, net.a, net.b, 40000, 179)
        with pytest.raises(RuntimeError):
            client.send(b"too early")

    def test_bidirectional_transfer(self):
        sim = Simulator()
        net = Net(sim)
        got_a, got_b = bytearray(), bytearray()
        client, server = connect_pair(
            sim, net.a, net.b, 40000, 179,
            on_established_client=lambda ep: ep.send(b"from-client"),
            on_established_server=lambda ep: None,
        )

        def server_established(ep):
            ep.send(b"from-server")

        server.on_established = server_established
        collect_all(server, got_b)
        collect_all(client, got_a)
        sim.run(until_us=seconds(10))
        assert bytes(got_b) == b"from-client"
        assert bytes(got_a) == b"from-server"


def _completion_time(payload, window):
    sim = Simulator()
    net = Net(sim, delay_us=20_000)
    done = []
    received = bytearray()

    client, server = connect_pair(
        sim, net.a, net.b, 40000, 179,
        server_config=TcpConfig(recv_buffer_bytes=window),
        on_established_client=lambda ep: ep.send(payload),
    )

    def on_data(ep):
        received.extend(ep.read())
        if len(received) >= len(payload) and not done:
            done.append(sim.now)

    server.on_data = on_data
    sim.run(until_us=seconds(600))
    assert done, "transfer did not complete"
    return done[0]


class TestLossRecovery:
    def test_recovers_from_single_loss(self):
        sim = Simulator()
        loss = CountedLoss(0)
        net = Net(sim, loss_up=loss)
        payload = bytes(100_000)
        received = bytearray()
        client, server = connect_pair(
            sim, net.a, net.b, 40000, 179,
            on_established_client=lambda ep: ep.send(payload),
        )
        collect_all(server, received)
        sim.schedule(50_000, loss.arm, 1)  # drop one data packet mid-flight
        sim.run(until_us=seconds(600))
        assert len(received) == len(payload)
        assert client.sender.total_retransmissions >= 1

    def test_fast_retransmit_fires(self):
        sim = Simulator()
        loss = CountedLoss(0)
        net = Net(sim, loss_up=loss)
        payload = bytes(200_000)
        received = bytearray()
        client, server = connect_pair(
            sim, net.a, net.b, 40000, 179,
            on_established_client=lambda ep: ep.send(payload),
        )
        collect_all(server, received)
        # Drop one packet once the window has opened enough for 3 dupacks.
        sim.schedule(50_000, loss.arm, 1)
        sim.run(until_us=seconds(600))
        assert len(received) == len(payload)
        assert client.sender.total_fast_retransmits >= 1

    def test_rto_after_blackout(self):
        sim = Simulator()
        # Blackout long enough to kill a whole flight => timeout recovery.
        net = Net(sim, loss_up=WindowLoss([(50_000, seconds(2))]))
        payload = bytes(400_000)
        received = bytearray()
        client, server = connect_pair(
            sim, net.a, net.b, 40000, 179,
            on_established_client=lambda ep: ep.send(payload),
        )
        collect_all(server, received)
        sim.run(until_us=seconds(600))
        assert len(received) == len(payload)
        assert client.sender.total_timeouts >= 1
        # cwnd collapsed at some point: ssthresh must be well under 64KB.
        assert client.sender.cc.ssthresh < 65535

    def test_consecutive_timeouts_back_off(self):
        sim = Simulator()
        net = Net(sim, loss_up=WindowLoss([(50_000, seconds(5))]))
        payload = bytes(400_000)
        received = bytearray()
        client, server = connect_pair(
            sim, net.a, net.b, 40000, 179,
            on_established_client=lambda ep: ep.send(payload),
        )
        collect_all(server, received)
        sim.run(until_us=seconds(600))
        assert len(received) == len(payload)
        assert client.sender.total_timeouts >= 3


class TestClose:
    def test_graceful_close(self):
        sim = Simulator()
        net = Net(sim)
        received = bytearray()
        client, server = connect_pair(
            sim, net.a, net.b, 40000, 179,
            on_established_client=lambda ep: (ep.send(b"bye"), ep.close()),
        )
        collect_all(server, received)
        sim.run(until_us=seconds(10))
        assert bytes(received) == b"bye"
        assert server.receiver.fin_received

    def test_abort_sends_rst(self):
        sim = Simulator()
        net = Net(sim)
        closed = []
        client, server = connect_pair(
            sim, net.a, net.b, 40000, 179,
            on_close_server=lambda ep: closed.append("server"),
        )
        sim.run(until_us=seconds(1))
        client.abort()
        sim.run(until_us=seconds(2))
        assert server.state is TcpState.CLOSED
        assert "server" in closed

    def test_silent_kill_blackholes(self):
        sim = Simulator()
        net = Net(sim)
        client, server = connect_pair(sim, net.a, net.b, 40000, 179)
        sim.schedule(seconds(1), server.kill)
        sim.schedule(seconds(1) + 1000, lambda: client.send(bytes(50_000)))
        sim.run(until_us=seconds(30))
        # The client keeps retransmitting into the void.
        assert client.sender.total_timeouts >= 2
        assert net.b.unmatched_packets > 0
