"""Tests for receiver flow control, zero-window probing and the ZeroAckBug."""

from repro.core.units import seconds
from repro.netsim.simulator import Simulator
from repro.tcp.options import TcpConfig
from repro.tcp.receiver import RecvHalf
from repro.tcp.socket import connect_pair

from tests.tcp.helpers import Net


class SlowReader:
    """Reads from an endpoint at a fixed rate (bytes per interval)."""

    def __init__(self, sim, endpoint, chunk_bytes, interval_us, start_after_us=0):
        self.sim = sim
        self.endpoint = endpoint
        self.chunk = chunk_bytes
        self.interval = interval_us
        self.consumed = bytearray()
        endpoint.on_data = lambda ep: None  # do not auto-drain
        sim.schedule(start_after_us, self._tick)

    def _tick(self):
        self.consumed.extend(self.endpoint.read(self.chunk))
        self.sim.schedule(self.interval, self._tick)


class TestAdvertisedWindow:
    def test_window_shrinks_when_app_stalls(self):
        sim = Simulator()
        net = Net(sim)
        client, server = connect_pair(
            sim, net.a, net.b, 40000, 179,
            server_config=TcpConfig(recv_buffer_bytes=65535),
            on_established_client=lambda ep: ep.send(bytes(200_000)),
        )
        reader = SlowReader(sim, server, chunk_bytes=2000,
                            interval_us=50_000, start_after_us=seconds(1))
        sim.run(until_us=seconds(0.5))
        # The app read nothing yet: buffer should be full, window ~0.
        assert server.receiver.advertised_window < 1400
        assert server.receiver.buffered_bytes > 60_000
        sim.run(until_us=seconds(120))
        assert len(reader.consumed) == 200_000

    def test_zero_window_stalls_sender(self):
        sim = Simulator()
        net = Net(sim)
        client, server = connect_pair(
            sim, net.a, net.b, 40000, 179,
            server_config=TcpConfig(recv_buffer_bytes=4200, mss=1400),
            on_established_client=lambda ep: ep.send(bytes(50_000)),
        )
        server.on_data = lambda ep: None
        sim.run(until_us=seconds(5))
        # Nothing read: at most the buffer can have been delivered.
        assert server.receiver.total_received_bytes <= 4200
        assert client.sender.unsent_bytes > 0

    def test_window_update_resumes_transfer(self):
        sim = Simulator()
        net = Net(sim)
        client, server = connect_pair(
            sim, net.a, net.b, 40000, 179,
            server_config=TcpConfig(recv_buffer_bytes=8400, mss=1400),
            on_established_client=lambda ep: ep.send(bytes(100_000)),
        )
        reader = SlowReader(sim, server, chunk_bytes=8400,
                            interval_us=100_000, start_after_us=seconds(1))
        sim.run(until_us=seconds(60))
        assert len(reader.consumed) == 100_000

    def test_probe_counter_increments(self):
        sim = Simulator()
        net = Net(sim)
        client, server = connect_pair(
            sim, net.a, net.b, 40000, 179,
            server_config=TcpConfig(recv_buffer_bytes=2800, mss=1400),
            on_established_client=lambda ep: ep.send(bytes(20_000)),
        )
        server.on_data = lambda ep: None
        sim.run(until_us=seconds(10))
        assert client.sender.total_probes >= 1


class TestZeroAckBug:
    def run_bug_scenario(self, bug_enabled):
        sim = Simulator()
        net = Net(sim)
        client, server = connect_pair(
            sim, net.a, net.b, 40000, 179,
            client_config=TcpConfig(
                zero_ack_bug=bug_enabled,
                zero_window_probe_delay_us=600_000,
            ),
            server_config=TcpConfig(recv_buffer_bytes=4200, mss=1400),
            on_established_client=lambda ep: ep.send(bytes(60_000)),
        )
        # The reader drains in bursts timed so a window update lands
        # between probe creation (persist fires ~0.55s) and probe
        # transmission (+600ms), which is the bug's race window.
        reader = SlowReader(sim, server, chunk_bytes=4200,
                            interval_us=700_000, start_after_us=seconds(1))
        sim.run(until_us=seconds(120))
        return client, server, reader

    def test_bug_discards_probes_and_recovers_via_rto(self):
        client, server, reader = self.run_bug_scenario(bug_enabled=True)
        assert client.sender.bug_discarded_probes >= 1
        # The retransmission machinery had to kick in to recover.
        assert client.sender.total_timeouts >= 1
        # Data still eventually arrives (TCP is reliable despite the bug).
        assert len(reader.consumed) == 60_000

    def test_without_bug_no_spurious_timeouts(self):
        client, server, reader = self.run_bug_scenario(bug_enabled=False)
        assert client.sender.bug_discarded_probes == 0
        assert len(reader.consumed) == 60_000


class TestZeroAckBugDeterministic:
    """Drive the probe race by hand against a bare SendHalf."""

    def setup_half(self, bug=True):
        from repro.tcp.sender import SendHalf

        sim = Simulator()
        transmitted = []
        config = TcpConfig(
            mss=1000,
            initial_cwnd_mss=4,
            zero_ack_bug=bug,
            persist_timeout_us=500_000,
            zero_window_probe_delay_us=30_000,
            delayed_ack=False,
        )
        half = SendHalf(
            sim, config,
            transmit=lambda seq, data, retx: transmitted.append(
                (sim.now, seq, len(data), retx)
            ),
        )
        return sim, half, transmitted

    def test_race_discards_probe_and_leaves_a_hole(self):
        sim, half, transmitted = self.setup_half(bug=True)
        half.on_ack(0, 3000)
        half.write(bytes(5000))  # 3 segments go out, 2000 bytes pent up
        assert [t[1] for t in transmitted] == [0, 1000, 2000]
        half.on_ack(3000, 0)  # everything acked, window closed
        assert half.peer_window == 0
        sim.run(until_us=520_000)  # persist fired, probe event pending
        half.on_ack(3000, 2000)  # window update inside the race window
        assert half.bug_discarded_probes == 1
        # The phantom byte was counted as sent: new data resumes at
        # 3001, leaving a one-byte hole at 3000 on the wire.
        sent_after = [t for t in transmitted if t[0] >= 520_000]
        assert sent_after and sent_after[0][1] == 3001
        # The receiver can never ack past 3000; dup acks accumulate and
        # the RTO eventually fires a go-back-N resend from 3000.
        sim.run(until_us=seconds(5))
        retx = [t for t in transmitted if t[3]]
        assert retx and retx[0][1] == 3000
        # ACK of everything clears the connection.
        half.on_ack(5000, 2000)
        assert half.unsent_bytes == 0

    def test_correct_stack_sends_on_window_update(self):
        sim, half, transmitted = self.setup_half(bug=False)
        half.on_ack(0, 3000)
        half.write(bytes(5000))
        half.on_ack(3000, 0)
        sim.run(until_us=520_000)
        half.on_ack(3000, 2000)  # window update: data flows immediately
        assert half.bug_discarded_probes == 0
        assert any(t[1] == 3000 and t[2] == 1000 for t in transmitted)


class TestRecvHalfUnit:
    def make(self, **config_kw):
        sim = Simulator()
        acks = []
        config = TcpConfig(**config_kw)
        half = RecvHalf(sim, config, send_ack=lambda: acks.append(sim.now))
        return sim, half, acks

    def test_in_order_delivery(self):
        sim, half, acks = self.make(delayed_ack=False)
        half.on_segment(0, b"abc")
        half.on_segment(3, b"def")
        assert half.read() == b"abcdef"
        assert half.rcv_nxt == 6
        assert len(acks) == 2

    def test_out_of_order_reassembly(self):
        sim, half, acks = self.make(delayed_ack=False)
        half.on_segment(3, b"def")
        assert half.read() == b""
        assert half.out_of_order_segments == 1
        half.on_segment(0, b"abc")
        assert half.read() == b"abcdef"

    def test_duplicate_acked_immediately(self):
        sim, half, acks = self.make(delayed_ack=True)
        half.on_segment(0, b"abc")
        half.on_segment(0, b"abc")  # duplicate
        assert half.duplicate_segments == 1
        assert acks  # immediate dup-ack despite delayed-ack policy

    def test_overlapping_segment_trimmed(self):
        sim, half, acks = self.make(delayed_ack=False)
        half.on_segment(0, b"abcd")
        half.on_segment(2, b"cdef")
        assert half.read() == b"abcdef"

    def test_delayed_ack_every_second_segment(self):
        sim, half, acks = self.make(delayed_ack=True)
        half.on_segment(0, b"x" * 1400)
        assert acks == []  # first segment: ack deferred
        half.on_segment(1400, b"x" * 1400)
        assert len(acks) == 1  # second segment: ack now

    def test_delayed_ack_timer_fires(self):
        sim, half, acks = self.make(delayed_ack=True)
        half.on_segment(0, b"only one")
        sim.run(until_us=seconds(1))
        assert len(acks) == 1
        assert acks[0] == 100_000  # the 100ms delack timeout

    def test_window_closes_with_buffer(self):
        sim, half, acks = self.make(recv_buffer_bytes=2800)
        half.on_segment(0, b"z" * 2800)
        assert half.advertised_window == 0
        half.read(1400)
        assert half.advertised_window == 1400

    def test_read_from_zero_window_sends_update(self):
        sim, half, acks = self.make(recv_buffer_bytes=2800, delayed_ack=False)
        half.on_segment(0, b"z" * 2800)
        n_acks = len(acks)
        half.read()  # reopens window completely
        assert len(acks) == n_acks + 1

    def test_peek_does_not_consume(self):
        sim, half, acks = self.make(delayed_ack=False)
        half.on_segment(0, b"hello")
        assert half.peek() == b"hello"
        assert half.read() == b"hello"

    def test_fin_handling(self):
        sim, half, acks = self.make(delayed_ack=False)
        half.on_segment(0, b"bye", fin=True)
        assert half.fin_received
        assert half.read() == b"bye"
