"""Shared topology builder for TCP tests."""

from repro.netsim.link import Link
from repro.netsim.node import Host
from repro.netsim.simulator import Simulator


class Net:
    """Two hosts joined by a duplex pair of links."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float = 80_000_000,
        delay_us: int = 5_000,
        loss_up=None,
        loss_down=None,
        buffer_packets: int = 1000,
    ) -> None:
        self.sim = sim
        self.a = Host("a", "10.0.0.1")
        self.b = Host("b", "10.0.0.2")
        self.link_ab = Link(
            sim, "a->b", bandwidth_bps, delay_us,
            deliver=self.b.deliver, loss_model=loss_up,
            buffer_packets=buffer_packets,
        )
        self.link_ba = Link(
            sim, "b->a", bandwidth_bps, delay_us,
            deliver=self.a.deliver, loss_model=loss_down,
            buffer_packets=buffer_packets,
        )
        self.a.add_route("10.0.0.2", self.link_ab.send)
        self.b.add_route("10.0.0.1", self.link_ba.send)


def collect_all(endpoint, sink: bytearray):
    """An on_data callback that drains everything into ``sink``."""

    def _on_data(ep):
        sink.extend(ep.read())

    endpoint.on_data = _on_data
    return _on_data
