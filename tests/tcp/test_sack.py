"""Tests for SACK: codec, negotiation, block generation and recovery."""

import pytest

from repro.core.units import seconds
from repro.netsim.link import BernoulliLoss, CountedLoss
from repro.netsim.random import RandomStreams
from repro.netsim.simulator import Simulator
from repro.tcp.options import TcpConfig
from repro.tcp.receiver import RecvHalf
from repro.tcp.socket import connect_pair
from repro.wire import tcpw

from tests.tcp.helpers import Net, collect_all


class TestSackCodec:
    def make(self, **kw):
        defaults = dict(
            src_port=1, dst_port=2, seq=0, ack=100, flags=tcpw.ACK,
            window=65535,
        )
        defaults.update(kw)
        return tcpw.TcpHeader(**defaults)

    def test_sack_permitted_roundtrip(self):
        header = self.make(flags=tcpw.SYN, sack_permitted=True, mss_option=1400)
        decoded = tcpw.decode(header.encode("1.1.1.1", "2.2.2.2"))
        assert decoded.sack_permitted
        assert decoded.mss_option == 1400

    def test_sack_blocks_roundtrip(self):
        blocks = ((1000, 2400), (5000, 6400), (9000, 10400))
        header = self.make(sack_blocks=blocks)
        decoded = tcpw.decode(header.encode("1.1.1.1", "2.2.2.2"))
        assert decoded.sack_blocks == blocks

    def test_no_sack_by_default(self):
        decoded = tcpw.decode(self.make().encode("1.1.1.1", "2.2.2.2"))
        assert not decoded.sack_permitted
        assert decoded.sack_blocks == ()

    def test_at_most_four_blocks_encoded(self):
        blocks = tuple((i * 1000, i * 1000 + 500) for i in range(6))
        header = self.make(sack_blocks=blocks)
        decoded = tcpw.decode(header.encode("1.1.1.1", "2.2.2.2"))
        assert len(decoded.sack_blocks) == 4

    def test_checksum_still_valid_with_sack(self):
        header = self.make(sack_blocks=((1, 2),), payload=b"xy")
        raw = header.encode("1.1.1.1", "2.2.2.2")
        decoded = tcpw.decode(raw, "1.1.1.1", "2.2.2.2", verify_checksum=True)
        assert decoded.payload == b"xy"


class TestSackBlockGeneration:
    def make_half(self):
        sim = Simulator()
        return RecvHalf(sim, TcpConfig(delayed_ack=False), send_ack=lambda: None)

    def test_no_blocks_when_in_order(self):
        half = self.make_half()
        half.on_segment(0, b"x" * 1000)
        assert half.sack_blocks() == ()

    def test_single_block(self):
        half = self.make_half()
        half.on_segment(2000, b"x" * 1000)
        assert half.sack_blocks() == ((2000, 3000),)

    def test_adjacent_stash_coalesces(self):
        half = self.make_half()
        half.on_segment(2000, b"x" * 1000)
        half.on_segment(3000, b"x" * 1000)
        assert half.sack_blocks() == ((2000, 4000),)

    def test_most_recent_block_first(self):
        half = self.make_half()
        half.on_segment(2000, b"x" * 500)
        half.on_segment(9000, b"x" * 500)  # most recent
        blocks = half.sack_blocks()
        assert blocks[0] == (9000, 9500)
        assert blocks[1] == (2000, 2500)

    def test_blocks_clear_after_hole_fills(self):
        half = self.make_half()
        half.on_segment(1000, b"x" * 1000)
        half.on_segment(0, b"x" * 1000)
        assert half.sack_blocks() == ()
        assert half.rcv_nxt == 2000


class TestSackNegotiation:
    def test_negotiated_when_both_sides_enable(self):
        sim = Simulator()
        net = Net(sim)
        client, server = connect_pair(
            sim, net.a, net.b, 40000, 179,
            client_config=TcpConfig(sack=True),
            server_config=TcpConfig(sack=True),
        )
        sim.run(until_us=seconds(1))
        assert client.sack_negotiated
        assert server.sack_negotiated
        assert client.sender.sack_enabled

    def test_not_negotiated_when_one_side_lacks_it(self):
        sim = Simulator()
        net = Net(sim)
        client, server = connect_pair(
            sim, net.a, net.b, 40000, 179,
            client_config=TcpConfig(sack=True),
            server_config=TcpConfig(sack=False),
        )
        sim.run(until_us=seconds(1))
        assert not client.sack_negotiated
        assert not server.sack_negotiated


class TestSackRecovery:
    def run_lossy_transfer(self, sack, drop_at_us=60_000, drop_count=3,
                           payload_len=400_000):
        sim = Simulator()
        loss = CountedLoss(0)
        net = Net(sim, loss_up=loss)
        payload = bytes(i % 251 for i in range(payload_len))
        received = bytearray()
        config = TcpConfig(sack=sack)
        client, server = connect_pair(
            sim, net.a, net.b, 40000, 179,
            client_config=config, server_config=TcpConfig(sack=sack),
            on_established_client=lambda ep: ep.send(payload),
        )
        collect_all(server, received)
        sim.schedule(drop_at_us, loss.arm, drop_count)
        sim.run(until_us=seconds(600))
        assert bytes(received) == payload
        return client, sim.now

    def test_sack_transfer_completes_after_multi_loss(self):
        client, _ = self.run_lossy_transfer(sack=True)
        assert client.sender.total_retransmissions >= 3

    def test_sack_retransmits_less_than_goback_n(self):
        """SACK resends only the holes; an RTO-driven recovery resends
        delivered data too."""
        with_sack, _ = self.run_lossy_transfer(sack=True, drop_count=5)
        without, _ = self.run_lossy_transfer(sack=False, drop_count=5)
        assert (
            with_sack.sender.total_retransmissions
            <= without.sender.total_retransmissions
        )

    def test_sack_under_random_loss(self):
        sim = Simulator()
        streams = RandomStreams(9)
        net = Net(sim, loss_up=BernoulliLoss(0.03, streams.stream("loss")))
        payload = bytes(300_000)
        received = bytearray()
        client, server = connect_pair(
            sim, net.a, net.b, 40000, 179,
            client_config=TcpConfig(sack=True),
            server_config=TcpConfig(sack=True),
            on_established_client=lambda ep: ep.send(payload),
        )
        collect_all(server, received)
        sim.run(until_us=seconds(600))
        assert len(received) == len(payload)

    def test_analyzer_handles_sack_traffic(self):
        """T-DAT's window-based assumption must degrade gracefully."""
        import random

        from repro.analysis.tdat import analyze_pcap
        from repro.bgp.table import generate_table
        from repro.workloads.scenarios import MonitoringSetup, RouterParams

        sim = Simulator()
        streams = RandomStreams(10)
        setup = MonitoringSetup(sim)
        table = generate_table(30_000, random.Random(10))
        setup.add_router(
            RouterParams(
                name="r1",
                ip="10.10.0.1",
                table=table,
                tcp=TcpConfig(sack=True),
                upstream_loss=BernoulliLoss(0.02, streams.stream("loss")),
            )
        )
        setup.start()
        sim.run(until_us=seconds(300))
        report = analyze_pcap(setup.sniffer.sorted_records(), min_data_packets=2)
        analysis = next(iter(report))
        # Retransmissions are still labeled and losses attributed.
        assert analysis.labeling.retransmissions()
        assert analysis.factors.ratios["network_packet_loss"] >= 0
