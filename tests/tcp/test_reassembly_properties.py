"""Property-based tests: TCP reassembly integrity under adversity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.simulator import Simulator
from repro.tcp.options import TcpConfig
from repro.tcp.receiver import RecvHalf


def make_half(buffer_bytes=1 << 20):
    sim = Simulator()
    config = TcpConfig(delayed_ack=False, recv_buffer_bytes=buffer_bytes)
    return RecvHalf(sim, config, send_ack=lambda: None)


@st.composite
def segmented_stream(draw):
    """A byte stream cut into segments at random boundaries."""
    data = draw(st.binary(min_size=1, max_size=2000))
    cuts = draw(
        st.lists(
            st.integers(min_value=1, max_value=max(len(data) - 1, 1)),
            max_size=10,
        )
    )
    boundaries = sorted({0, len(data), *[c for c in cuts if c < len(data)]})
    segments = [
        (start, data[start:end])
        for start, end in zip(boundaries, boundaries[1:])
    ]
    return data, segments


@given(segmented_stream(), st.randoms(use_true_random=False))
def test_reassembly_under_reordering(stream, rng):
    data, segments = stream
    half = make_half()
    shuffled = list(segments)
    rng.shuffle(shuffled)
    for seq, payload in shuffled:
        half.on_segment(seq, payload)
    assert half.read() == data
    assert half.rcv_nxt == len(data)


@given(segmented_stream(), st.randoms(use_true_random=False))
def test_reassembly_under_duplication(stream, rng):
    data, segments = stream
    half = make_half()
    doubled = segments + [rng.choice(segments) for _ in range(3)]
    rng.shuffle(doubled)
    for seq, payload in doubled:
        half.on_segment(seq, payload)
    assert half.read() == data


@given(segmented_stream())
def test_reassembly_with_overlapping_resegmentation(stream):
    data, segments = stream
    half = make_half()
    # Deliver in order, then re-deliver everything as one big segment
    # (a pathological full-stream retransmission).
    for seq, payload in segments:
        half.on_segment(seq, payload)
    half.on_segment(0, data)
    assert half.read() == data
    assert half.rcv_nxt == len(data)


@given(segmented_stream(), st.randoms(use_true_random=False))
def test_sack_blocks_are_exactly_the_stash(stream, rng):
    data, segments = stream
    if len(segments) < 2:
        return
    half = make_half()
    # Deliver everything except the first segment.
    for seq, payload in segments[1:]:
        half.on_segment(seq, payload)
    blocks = half.sack_blocks(max_blocks=64)
    covered = set()
    for left, right in blocks:
        covered.update(range(left, right))
    expected = set(range(segments[1][0], len(data)))
    assert covered == expected
    # Window accounting includes the stash (capped at the 16-bit field).
    free = half.config.recv_buffer_bytes - len(expected)
    assert half.advertised_window == min(free, 65535)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=150),
            st.integers(min_value=0, max_value=150),
        ).map(lambda t: (min(t), max(t))),
        max_size=8,
    ),
    st.integers(min_value=0, max_value=50),
)
def test_dilate_superset_and_size(spans, margin):
    from repro.core.timeranges import TimeRangeSet

    base = TimeRangeSet(spans)
    dilated = base.dilate(margin)
    # Dilation only adds coverage...
    assert base.difference(dilated).size() == 0
    # ...and adds at most 2*margin per original (coalesced) range.
    assert dilated.size() <= base.size() + 2 * margin * max(len(base), 1)
