"""Unit tests for the discrete-event simulator and timers."""

import pytest

from repro.netsim.simulator import (
    BUDGET_EVENTS,
    BUDGET_WALL_CLOCK,
    PeriodicTimer,
    SimBudget,
    SimBudgetExceeded,
    Simulator,
    Timer,
)


class TestSimulator:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0

    def test_custom_start_time(self):
        assert Simulator(start_time_us=500).now == 500

    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(30, log.append, "c")
        sim.schedule(10, log.append, "a")
        sim.schedule(20, log.append, "b")
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 30

    def test_ties_run_in_schedule_order(self):
        sim = Simulator()
        log = []
        for label in "abc":
            sim.schedule(10, log.append, label)
        sim.run()
        assert log == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1, lambda: None)

    def test_schedule_at(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(100, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [100]

    def test_schedule_at_past_rejected(self):
        sim = Simulator(start_time_us=100)
        with pytest.raises(ValueError):
            sim.schedule_at(50, lambda: None)

    def test_cancel(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(10, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_run_until_bound(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, fired.append, 1)
        sim.schedule(100, fired.append, 2)
        sim.run(until_us=50)
        assert fired == [1]
        assert sim.now == 50
        sim.run()
        assert fired == [1, 2]

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        log = []

        def chain(n):
            log.append((sim.now, n))
            if n < 3:
                sim.schedule(5, chain, n + 1)

        sim.schedule(0, chain, 0)
        sim.run()
        assert log == [(0, 0), (5, 1), (10, 2), (15, 3)]

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(1, forever)

        sim.schedule(1, forever)
        executed = sim.run(max_events=50)
        assert executed == 50

    def test_pending_counts_uncancelled(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        event = sim.schedule(20, lambda: None)
        event.cancel()
        assert sim.pending() == 1


class TestTimer:
    def test_fires_once(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(100)
        sim.run()
        assert fired == [100]
        assert not timer.armed

    def test_restart_resets_deadline(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(100)
        sim.schedule(50, timer.restart, 100)
        sim.run()
        assert fired == [150]

    def test_stop(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(100)
        timer.stop()
        sim.run()
        assert fired == []

    def test_restart_after_fire(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(10)
        sim.run()
        timer.start(10)
        sim.run()
        assert fired == [10, 20]


class TestPeriodicTimer:
    def test_ticks_at_interval(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 100, lambda: ticks.append(sim.now))
        timer.start()
        sim.run(until_us=350)
        timer.stop()
        assert ticks == [100, 200, 300]

    def test_initial_delay(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 100, lambda: ticks.append(sim.now))
        timer.start(initial_delay_us=0)
        sim.run(until_us=250)
        timer.stop()
        assert ticks == [0, 100, 200]

    def test_stop_halts_ticks(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 10, lambda: ticks.append(sim.now))
        timer.start()
        sim.schedule(35, timer.stop)
        sim.run(until_us=100)
        assert ticks == [10, 20, 30]

    def test_zero_interval_rejected(self):
        with pytest.raises(ValueError):
            PeriodicTimer(Simulator(), 0, lambda: None)


class TestSimBudget:
    @staticmethod
    def _endless(sim):
        """A self-rescheduling event: the shape of a pathological loop."""
        def tick():
            sim.schedule(1, tick)
        sim.schedule(1, tick)

    def test_event_budget_raises(self):
        sim = Simulator()
        self._endless(sim)
        with pytest.raises(SimBudgetExceeded) as err:
            sim.run(budget=SimBudget(max_events=100))
        assert err.value.reason == BUDGET_EVENTS
        assert err.value.events == 100
        assert not err.value.retryable  # deterministic: same seed, same count

    def test_wall_clock_budget_raises_retryable(self):
        sim = Simulator()
        self._endless(sim)
        with pytest.raises(SimBudgetExceeded) as err:
            sim.run(budget=SimBudget(max_wall_s=0.0, wall_check_every=1))
        assert err.value.reason == BUDGET_WALL_CLOCK
        assert err.value.retryable  # host load dependent: worth a retry

    def test_budget_not_hit_is_invisible(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(i, fired.append, i)
        executed = sim.run(budget=SimBudget(max_events=1000, max_wall_s=60.0))
        assert executed == 10
        assert fired == list(range(10))

    def test_legacy_max_events_still_stops_silently(self):
        sim = Simulator()
        self._endless(sim)
        assert sim.run(max_events=50) == 50
