"""Unit tests for links, loss models and path chains."""

import random

import pytest

from repro.netsim.link import (
    BernoulliLoss,
    CountedLoss,
    GilbertElliottLoss,
    Link,
    PathSegmentChain,
    WindowLoss,
)
from repro.netsim.packet import Packet
from repro.netsim.simulator import Simulator


def make_packet(size=1000, src="10.0.0.1", dst="10.0.0.2"):
    return Packet(src=src, dst=dst, payload=None, wire_length=size)


def make_link(sim, sink, **kwargs):
    defaults = dict(
        bandwidth_bps=8_000_000,  # 1 byte per microsecond
        propagation_delay_us=100,
    )
    defaults.update(kwargs)
    return Link(sim, "l", deliver=sink.append, **defaults)


class TestLinkDelivery:
    def test_single_packet_timing(self):
        sim = Simulator()
        sink = []
        link = make_link(sim, sink)
        link.send(make_packet(size=1000))
        sim.run()
        # 1000 bytes at 1 B/us = 1000us serialization + 100us propagation.
        assert sim.now == 1100
        assert len(sink) == 1

    def test_serialization_is_sequential(self):
        sim = Simulator()
        arrivals = []
        link = Link(
            sim,
            "l",
            bandwidth_bps=8_000_000,
            propagation_delay_us=0,
            deliver=lambda p: arrivals.append(sim.now),
        )
        link.send(make_packet(size=500))
        link.send(make_packet(size=500))
        sim.run()
        assert arrivals == [500, 1000]

    def test_min_serialization_one_us(self):
        sim = Simulator()
        sink = []
        link = make_link(sim, sink, bandwidth_bps=1e12, propagation_delay_us=0)
        link.send(make_packet(size=40))
        sim.run()
        assert sim.now == 1

    def test_buffer_overflow_drops_tail(self):
        sim = Simulator()
        sink = []
        drops = []
        link = make_link(sim, sink, buffer_packets=2)
        link.add_drop_hook(lambda p, reason, t: drops.append(reason))
        assert link.send(make_packet())
        assert link.send(make_packet())
        assert not link.send(make_packet())
        sim.run()
        assert len(sink) == 2
        assert drops == ["buffer"]
        assert link.stats.dropped_buffer == 1

    def test_queue_depth(self):
        sim = Simulator()
        link = make_link(sim, [])
        link.send(make_packet())
        link.send(make_packet())
        assert link.queue_depth == 2
        sim.run()
        assert link.queue_depth == 0

    def test_stats_counts(self):
        sim = Simulator()
        sink = []
        link = make_link(sim, sink)
        for _ in range(3):
            link.send(make_packet(size=100))
        sim.run()
        assert link.stats.enqueued == 3
        assert link.stats.delivered == 3
        assert link.stats.bytes_delivered == 300

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, "l", bandwidth_bps=0, propagation_delay_us=0, deliver=print)
        with pytest.raises(ValueError):
            Link(sim, "l", bandwidth_bps=1, propagation_delay_us=-1, deliver=print)
        with pytest.raises(ValueError):
            Link(
                sim,
                "l",
                bandwidth_bps=1,
                propagation_delay_us=0,
                deliver=print,
                buffer_packets=0,
            )


class TestTaps:
    def test_tap_sees_packet_before_wire_loss(self):
        sim = Simulator()
        sink = []
        seen = []
        link = make_link(sim, sink, loss_model=WindowLoss([(0, 10_000)]))
        link.add_tap(lambda p, t: seen.append((p.packet_id, t)))
        pkt = make_packet(size=100)
        link.send(pkt)
        sim.run()
        assert seen == [(pkt.packet_id, 100)]
        assert sink == []
        assert link.stats.dropped_loss == 1

    def test_tap_timing_is_serialization_end(self):
        sim = Simulator()
        times = []
        link = make_link(sim, [])
        link.add_tap(lambda p, t: times.append(t))
        link.send(make_packet(size=250))
        sim.run()
        assert times == [250]


class TestLossModels:
    def test_window_loss(self):
        model = WindowLoss([(100, 200)])
        pkt = make_packet()
        assert model.should_drop(pkt, 150)
        assert not model.should_drop(pkt, 99)
        assert not model.should_drop(pkt, 200)

    def test_counted_loss(self):
        model = CountedLoss(2)
        pkt = make_packet()
        assert model.should_drop(pkt, 0)
        assert model.should_drop(pkt, 1)
        assert not model.should_drop(pkt, 2)
        model.arm(1)
        assert model.should_drop(pkt, 3)

    def test_bernoulli_rate_bounds(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.5, random.Random(1))

    def test_bernoulli_statistics(self):
        rng = random.Random(42)
        model = BernoulliLoss(0.3, rng)
        pkt = make_packet()
        drops = sum(model.should_drop(pkt, 0) for _ in range(10_000))
        assert 2700 < drops < 3300

    def test_gilbert_elliott_produces_bursts(self):
        rng = random.Random(7)
        model = GilbertElliottLoss(
            rng, p_good_to_bad=0.05, p_bad_to_good=0.2, loss_in_bad=1.0
        )
        pkt = make_packet()
        outcomes = [model.should_drop(pkt, i) for i in range(5000)]
        # There must be at least one run of >= 3 consecutive drops.
        run, best = 0, 0
        for dropped in outcomes:
            run = run + 1 if dropped else 0
            best = max(best, run)
        assert best >= 3


class TestPathSegmentChain:
    def test_two_link_chain_delivers_end_to_end(self):
        sim = Simulator()
        sink = []
        second = Link(
            sim, "down", bandwidth_bps=8_000_000, propagation_delay_us=50,
            deliver=sink.append,
        )
        first = Link(
            sim, "up", bandwidth_bps=8_000_000, propagation_delay_us=100,
            deliver=lambda p: None,
        )
        chain = PathSegmentChain([first, second])
        chain.send(make_packet(size=100))
        sim.run()
        # 100us ser + 100us prop + 100us ser + 50us prop.
        assert sim.now == 350
        assert len(sink) == 1

    def test_downstream_loss_after_upstream_tap(self):
        """A sniffer on link 1 sees packets the receiver never gets."""
        sim = Simulator()
        sink = []
        captured = []
        second = Link(
            sim, "down", bandwidth_bps=8_000_000, propagation_delay_us=0,
            deliver=sink.append, loss_model=WindowLoss([(0, 10**9)]),
        )
        first = Link(
            sim, "up", bandwidth_bps=8_000_000, propagation_delay_us=0,
            deliver=lambda p: None,
        )
        first.add_tap(lambda p, t: captured.append(p.packet_id))
        chain = PathSegmentChain([first, second])
        chain.send(make_packet())
        sim.run()
        assert len(captured) == 1
        assert sink == []

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            PathSegmentChain([])
