"""Unit tests for Host dispatch and seeded random streams."""

from dataclasses import dataclass

import pytest

from repro.netsim.node import Host
from repro.netsim.packet import Packet, tcp_wire_length
from repro.netsim.random import RandomStreams


@dataclass
class FakeSegment:
    src_port: int
    dst_port: int


def make_packet(src, dst, sport, dport):
    return Packet(
        src=src, dst=dst, payload=FakeSegment(sport, dport), wire_length=54
    )


class TestHost:
    def test_flow_dispatch(self):
        host = Host("rcv", "10.0.0.2")
        got = []
        host.register_flow(("10.0.0.1", 179, "10.0.0.2", 40000), got.append)
        pkt = make_packet("10.0.0.1", "10.0.0.2", 179, 40000)
        host.deliver(pkt)
        assert got == [pkt]

    def test_listener_fallback(self):
        host = Host("rcv", "10.0.0.2")
        got = []
        host.listen(179, got.append)
        pkt = make_packet("10.0.0.1", "10.0.0.2", 50000, 179)
        host.deliver(pkt)
        assert got == [pkt]

    def test_unmatched_counted(self):
        host = Host("rcv", "10.0.0.2")
        host.deliver(make_packet("10.0.0.1", "10.0.0.2", 1, 2))
        assert host.unmatched_packets == 1

    def test_unregister_flow(self):
        host = Host("rcv", "10.0.0.2")
        key = ("10.0.0.1", 179, "10.0.0.2", 40000)
        host.register_flow(key, lambda p: None)
        host.unregister_flow(key)
        host.unregister_flow(key)  # idempotent
        host.deliver(make_packet("10.0.0.1", "10.0.0.2", 179, 40000))
        assert host.unmatched_packets == 1

    def test_send_uses_route(self):
        host = Host("snd", "10.0.0.1")
        sent = []
        host.add_route("10.0.0.2", lambda p: sent.append(p) or True)
        pkt = make_packet("10.0.0.1", "10.0.0.2", 1, 2)
        assert host.send(pkt)
        assert sent == [pkt]

    def test_send_without_route_raises(self):
        host = Host("snd", "10.0.0.1")
        with pytest.raises(LookupError):
            host.send(make_packet("10.0.0.1", "10.0.0.2", 1, 2))


class TestPacket:
    def test_wire_length_helper(self):
        assert tcp_wire_length(0) == 54
        assert tcp_wire_length(1400) == 1454
        assert tcp_wire_length(100, tcp_options_len=12) == 166

    def test_nonpositive_wire_length_rejected(self):
        with pytest.raises(ValueError):
            Packet(src="a", dst="b", payload=None, wire_length=0)

    def test_packet_ids_unique(self):
        a = Packet(src="a", dst="b", payload=None, wire_length=1)
        b = Packet(src="a", dst="b", payload=None, wire_length=1)
        assert a.packet_id != b.packet_id


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = RandomStreams(1).stream("loss")
        b = RandomStreams(1).stream("loss")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_are_independent(self):
        streams = RandomStreams(1)
        loss = streams.stream("loss")
        first_draws = [loss.random() for _ in range(3)]
        # Creating and using another stream must not perturb "loss".
        streams2 = RandomStreams(1)
        streams2.stream("jitter").random()
        loss2 = streams2.stream("loss")
        assert [loss2.random() for _ in range(3)] == first_draws

    def test_different_names_differ(self):
        streams = RandomStreams(1)
        assert streams.stream("a").random() != streams.stream("b").random()

    def test_stream_cached(self):
        streams = RandomStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_fork_namespaces(self):
        parent = RandomStreams(1)
        child_a = parent.fork("campaign-a").stream("loss")
        child_b = parent.fork("campaign-b").stream("loss")
        assert child_a.random() != child_b.random()
