"""The runtime lock-order recorder: RL011's dynamic cross-check.

These tests drive the recorder directly (no pytest-in-pytest): real
threads, real locks, seeded orders.  The plugin's factory patching is
exercised through install()/uninstall() with construction sites forced
into the instrumented subtree.
"""

from __future__ import annotations

import threading

import pytest

from tests.lockorder_plugin import (
    LockOrderRecorder,
    _RecordingLock,
    _RecordingRLock,
    install,
    uninstall,
)


def make_lock(recorder: LockOrderRecorder, site: str) -> _RecordingLock:
    return _RecordingLock(threading.Lock(), site, recorder)


def run_thread(fn) -> None:
    thread = threading.Thread(target=fn)
    thread.start()
    thread.join(timeout=10.0)
    assert not thread.is_alive()


class TestRecorder:
    def test_consistent_order_has_no_inversion(self):
        recorder = LockOrderRecorder()
        a = make_lock(recorder, "/x/a.py:1")
        b = make_lock(recorder, "/x/b.py:1")
        for _ in range(2):
            with a:
                with b:
                    pass
        assert recorder.edges == {
            ("/x/a.py:1", "/x/b.py:1"): recorder.edges[
                ("/x/a.py:1", "/x/b.py:1")
            ]
        }
        assert recorder.inversions() == []

    def test_opposite_orders_in_two_threads_is_a_cycle(self):
        recorder = LockOrderRecorder()
        a = make_lock(recorder, "/x/a.py:1")
        b = make_lock(recorder, "/x/b.py:1")

        def forward():
            with a:
                with b:
                    pass

        def backward():
            with b:
                with a:
                    pass

        run_thread(forward)
        run_thread(backward)
        cycles = recorder.inversions()
        assert cycles == [["/x/a.py:1", "/x/b.py:1", "/x/a.py:1"]]
        description = "\n".join(recorder.describe(cycles[0]))
        assert "a.py:1 held while acquiring" in description
        assert "b.py:1 held while acquiring" in description

    def test_three_lock_rotation_is_one_anchored_cycle(self):
        recorder = LockOrderRecorder()
        sites = ["/x/a.py:1", "/x/b.py:1", "/x/c.py:1"]
        locks = {s: make_lock(recorder, s) for s in sites}
        for held, acquired in (
            (sites[0], sites[1]), (sites[1], sites[2]), (sites[2], sites[0]),
        ):
            def pair(h=held, a=acquired):
                with locks[h]:
                    with locks[a]:
                        pass
            run_thread(pair)
        cycles = recorder.inversions()
        assert len(cycles) == 1
        assert cycles[0][0] == cycles[0][-1] == "/x/a.py:1"
        assert set(cycles[0]) == set(sites)

    def test_same_site_reentry_is_not_an_edge(self):
        # Two locks born on the same line are one node (RL011 keys by
        # attribute path, the recorder by construction site): nesting
        # them must not fabricate a self-cycle.
        recorder = LockOrderRecorder()
        outer = make_lock(recorder, "/x/same.py:9")
        inner = make_lock(recorder, "/x/same.py:9")
        with outer:
            with inner:
                pass
        assert recorder.edges == {}
        assert recorder.inversions() == []

    def test_condition_wait_releases_the_held_set(self):
        # While a thread waits on a condition its lock is NOT held;
        # acquires made after wakeup must not edge from it.  The proxy
        # forwards _release_save/_acquire_restore to keep this true.
        recorder = LockOrderRecorder()
        cond_lock = _RecordingRLock(
            threading.RLock(), "/x/cond.py:1", recorder
        )
        cond = threading.Condition(cond_lock)  # type: ignore[arg-type]
        other = make_lock(recorder, "/x/other.py:1")
        started = threading.Event()

        def waiter():
            with cond:
                started.set()
                cond.wait(timeout=10.0)

        def poker():
            started.wait(timeout=10.0)
            with other:  # must not record cond -> other: cond is free
                pass
            with cond:
                cond.notify_all()

        waiting = threading.Thread(target=waiter)
        waiting.start()
        run_thread(poker)
        waiting.join(timeout=10.0)
        assert not waiting.is_alive()
        assert ("/x/cond.py:1", "/x/other.py:1") not in recorder.edges

    def test_failed_nonblocking_acquire_records_nothing(self):
        recorder = LockOrderRecorder()
        a = make_lock(recorder, "/x/a.py:1")
        b = make_lock(recorder, "/x/b.py:1")
        b._inner.acquire()  # someone else holds b
        with a:
            assert b.acquire(blocking=False) is False
        b._inner.release()
        assert recorder.edges == {}


@pytest.fixture()
def factories_free():
    # Under `-p tests.lockorder_plugin` the factories are already
    # patched for the whole session; these install/uninstall drills
    # need them free.
    import tests.lockorder_plugin as plugin

    if plugin._ACTIVE is not None:
        pytest.skip("lock-order recorder active session-wide")


@pytest.mark.usefixtures("factories_free")
class TestFactoryPatch:
    def test_install_wraps_repo_constructions_only(self, monkeypatch):
        recorder = install()
        try:
            import repro.serve.session as session_module

            feeder = session_module.ChunkFeeder()
            # The Condition's internal RLock is attributed through
            # threading.py to the feeder's constructor in src/repro.
            assert isinstance(
                feeder._cond._lock,  # type: ignore[attr-defined]
                _RecordingLock,
            )
            # A lock born in test code is outside src/repro: untouched.
            assert not isinstance(threading.Lock(), _RecordingLock)
            feeder.feed(b"xy")
            feeder.close()
            assert feeder.read(2) == b"xy"
            assert recorder.inversions() == []
        finally:
            uninstall()

    def test_double_install_refuses(self):
        install()
        try:
            with pytest.raises(RuntimeError):
                install()
        finally:
            uninstall()

    def test_uninstall_restores_the_factories(self):
        before_lock = threading.Lock
        before_rlock = threading.RLock
        install()
        uninstall()
        assert threading.Lock is before_lock
        assert threading.RLock is before_rlock
