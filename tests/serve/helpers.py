"""Shared machinery for the analysis-service tests.

``running_server`` boots a real :class:`~repro.serve.AnalysisServer`
on an ephemeral port in a background thread and hands the test a tiny
HTTP client over ``http.client`` (no request-level magic — tests see
raw status codes, headers and bodies, including ``304``).
``flood_bytes`` renders a deterministic multi-connection capture to
pcap bytes for upload.
"""

from __future__ import annotations

import http.client
import json
import threading
from contextlib import contextmanager

from repro.api import Pipeline, ServeRequest
from repro.faults.stress import connection_flood
from repro.wire.pcap import records_to_bytes


def flood_bytes(
    connections: int = 8, data_packets: int = 4, payload_bytes: int = 400
) -> bytes:
    """A deterministic clean capture with ``connections`` parallel flows."""
    return records_to_bytes(
        connection_flood(connections, data_packets, payload_bytes)
    )


class ServeClient:
    """A plain HTTP/1.1 client bound to one running test server."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port

    def request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict | None = None,
    ) -> tuple[int, dict, bytes]:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=30)
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            payload = response.read()
            return response.status, dict(response.getheaders()), payload
        finally:
            conn.close()

    def json(self, method: str, path: str, body: bytes | None = None):
        status, _, payload = self.request(method, path, body)
        return status, json.loads(payload)

    # ------------------------------------------------------------------
    # The common session choreography
    # ------------------------------------------------------------------
    def create_session(self, spec: dict | None = None) -> str:
        body = json.dumps(spec).encode() if spec is not None else None
        status, payload = self.json("POST", "/sessions", body)
        assert status == 201, payload
        return payload["id"]

    def upload(self, session_id: str, data: bytes, chunk: int = 8192) -> None:
        for i in range(0, len(data), chunk):
            status, _, _ = self.request(
                "POST", f"/sessions/{session_id}/pcap", data[i : i + chunk]
            )
            assert status == 202
        status, payload = self.json(
            "POST", f"/sessions/{session_id}/finish?wait=1"
        )
        assert status == 200, payload
        assert payload["state"] in ("done", "failed"), payload


@contextmanager
def running_server(pipeline: Pipeline | None = None, **serve_knobs):
    """Boot a server on an ephemeral port; yields a :class:`ServeClient`."""
    pipeline = pipeline if pipeline is not None else Pipeline()
    request = ServeRequest(port=0, **serve_knobs)
    server = pipeline.build_server(request)
    ready = threading.Event()
    outcome: dict = {}

    def run() -> None:
        try:
            outcome["drained"] = server.run(
                on_ready=lambda host, port: ready.set()
            )
        except BaseException as exc:  # surfaced by the context manager
            outcome["error"] = exc
            ready.set()

    thread = threading.Thread(target=run, name="test-serve", daemon=True)
    thread.start()
    assert ready.wait(10), "server did not start"
    if "error" in outcome:
        raise outcome["error"]
    client = ServeClient(server.host, server.port)
    client.server = server
    try:
        yield client
    finally:
        server.request_shutdown()
        thread.join(30)
        if "error" in outcome:
            raise outcome["error"]
        assert not thread.is_alive(), "server failed to drain"
