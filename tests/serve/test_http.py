"""HTTP surface: endpoint matrix, conditional GETs, error mapping."""

from __future__ import annotations

import io
import json

from repro.analysis.budget import ResourceBudget
from repro.analysis.render import ReportRenderer
from repro.analysis.tdat import analyze_pcap
from repro.api import Pipeline

from tests.serve.helpers import ServeClient, flood_bytes, running_server


class TestBasics:
    def test_healthz_and_unknown_paths(self):
        with running_server() as client:
            status, payload = client.json("GET", "/healthz")
            assert status == 200 and payload == {"status": "ok"}
            status, payload = client.json("GET", "/no/such/thing")
            assert status == 404 and "no such path" in payload["error"]
            status, _, _ = client.request("PUT", "/sessions")
            assert status == 405

    def test_metrics_endpoint_counts_its_own_requests(self):
        with running_server() as client:
            client.json("GET", "/healthz")
            status, payload = client.json("GET", "/metrics")
            assert status == 200
            assert payload["serve.requests"]["value"] >= 1

    def test_session_lifecycle_and_listing(self):
        with running_server() as client:
            sid = client.create_session()
            status, payload = client.json("GET", "/sessions")
            assert status == 200
            assert [s["id"] for s in payload["sessions"]] == [sid]
            status, payload = client.json("GET", f"/sessions/{sid}")
            assert status == 200 and payload["state"] == "open"
            client.upload(sid, flood_bytes(3))
            status, _, _ = client.request("DELETE", f"/sessions/{sid}")
            assert status == 204
            status, _, _ = client.request("GET", f"/sessions/{sid}")
            assert status == 404

    def test_bad_session_specs_are_400s(self):
        with running_server() as client:
            status, payload = client.json("POST", "/sessions", b"not json")
            assert status == 400 and "bad session spec" in payload["error"]
            status, payload = client.json(
                "POST", "/sessions", json.dumps({"bogus_knob": 1}).encode()
            )
            assert status == 400 and "bogus_knob" in payload["error"]
            status, payload = client.json(
                "POST",
                "/sessions",
                json.dumps({"budget": {"nope": 1}}).encode(),
            )
            assert status == 400 and "bad budget" in payload["error"]


class TestConditionalGet:
    def test_report_etag_and_304_contract(self):
        data = flood_bytes(5)
        with running_server() as client:
            sid = client.create_session()
            client.upload(sid, data)
            status, headers, body = client.request(
                "GET", f"/sessions/{sid}/report"
            )
            assert status == 200
            etag = headers["ETag"]
            assert etag.startswith('"') and etag.endswith('"')

            # Same validator back -> 304, no body, same ETag.
            status, headers2, body2 = client.request(
                "GET",
                f"/sessions/{sid}/report",
                headers={"If-None-Match": etag},
            )
            assert status == 304 and body2 == b""
            assert headers2["ETag"] == etag

            # Weak/wildcard forms of the validator also match.
            for validator in (f"W/{etag}", "*", f'"zzz", {etag}'):
                status, _, _ = client.request(
                    "GET",
                    f"/sessions/{sid}/report",
                    headers={"If-None-Match": validator},
                )
                assert status == 304, validator

            # A stale validator gets the full body again.
            status, _, body3 = client.request(
                "GET",
                f"/sessions/{sid}/report",
                headers={"If-None-Match": '"0000"'},
            )
            assert status == 200 and body3 == body

            status, payload = client.json("GET", "/metrics")
            assert payload["serve.cache_hits"]["value"] >= 4

    def test_report_body_matches_one_shot_analysis(self):
        data = flood_bytes(6)
        with running_server() as client:
            sid = client.create_session()
            client.upload(sid, data, chunk=1500)
            _, _, body = client.request("GET", f"/sessions/{sid}/report")
        report = analyze_pcap(io.BytesIO(data))
        renderer = ReportRenderer(
            health=report.health, degradation=report.degradation
        )
        renderer.extend(list(report))
        renderer.finish()
        _, ref_body = renderer.render_report()
        assert body == ref_body

    def test_health_endpoint_is_conditional_too(self):
        with running_server() as client:
            sid = client.create_session()
            client.upload(sid, flood_bytes(2))
            status, headers, _ = client.request(
                "GET", f"/sessions/{sid}/health"
            )
            assert status == 200
            status, _, _ = client.request(
                "GET",
                f"/sessions/{sid}/health",
                headers={"If-None-Match": headers["ETag"]},
            )
            assert status == 304


class TestShutdown:
    def test_post_shutdown_drains_open_sessions(self):
        with running_server() as client:
            sid = client.create_session()
            client.upload(sid, flood_bytes(3))
            status, payload = client.json("POST", "/shutdown")
            assert status == 202 and payload == {"status": "draining"}
        # running_server's exit joins the server thread, which asserts
        # the drain triggered above actually ran to completion.

    def test_programmatic_shutdown_is_not_signal_drain(self):
        with running_server(trace_requests=True) as client:
            client.json("GET", "/healthz")


class TestPipelineServeKnobs:
    def test_budget_knob_applies_to_every_session(self):
        pipeline = Pipeline()
        with running_server(
            pipeline, budget=ResourceBudget(max_live_connections=4)
        ) as client:
            sid = client.create_session()
            client.upload(sid, flood_bytes(24))
            status, payload = client.json("GET", f"/sessions/{sid}")
            assert status == 200
            assert payload["degraded"] is True

    def test_max_sessions_is_enforced_over_http(self):
        with running_server(max_sessions=1) as client:
            client.create_session()
            status, payload = client.json("POST", "/sessions")
            assert status == 429
            assert "session" in payload["error"]
