"""Session layer: the byte pipe, the analysis thread, the registry."""

from __future__ import annotations

import io
import threading

import pytest

from repro.analysis.budget import ResourceBudget
from repro.analysis.render import ReportRenderer
from repro.analysis.tdat import analyze_pcap
from repro.serve.session import (
    AnalysisSession,
    ChunkFeeder,
    ServeError,
    SessionAborted,
    SessionManager,
)

from tests.serve.helpers import flood_bytes


class TestChunkFeeder:
    def test_read_blocks_until_exactly_n_bytes(self):
        feeder = ChunkFeeder()
        got = {}

        def consume():
            got["data"] = feeder.read(10)

        thread = threading.Thread(target=consume)
        thread.start()
        feeder.feed(b"abcd")
        feeder.feed(b"efgh")
        feeder.feed(b"ijkl")
        thread.join(5)
        assert not thread.is_alive()
        assert got["data"] == b"abcdefghij"
        # The remainder stays queued for the next read.
        feeder.close()
        assert feeder.read(10) == b"kl"

    def test_short_read_only_at_eof(self):
        feeder = ChunkFeeder()
        feeder.feed(b"xyz")
        feeder.close()
        assert feeder.read(2) == b"xy"
        assert feeder.read(8) == b"z"
        assert feeder.read(8) == b""

    def test_feed_applies_backpressure(self):
        feeder = ChunkFeeder(max_buffered=8)
        feeder.feed(b"12345678")
        blocked = threading.Event()
        passed = threading.Event()

        def produce():
            blocked.set()
            feeder.feed(b"more")
            passed.set()

        thread = threading.Thread(target=produce, daemon=True)
        thread.start()
        assert blocked.wait(5)
        assert not passed.wait(0.2), "feed should block while full"
        assert feeder.read(8) == b"12345678"  # drain frees the producer
        assert passed.wait(5)

    def test_feed_after_close_is_a_conflict(self):
        feeder = ChunkFeeder()
        feeder.close()
        with pytest.raises(ServeError):
            feeder.feed(b"late")

    def test_abort_unblocks_the_reader_with_an_error(self):
        feeder = ChunkFeeder()
        caught = {}

        def consume():
            try:
                feeder.read(100)
            except SessionAborted as exc:
                caught["reason"] = str(exc)

        thread = threading.Thread(target=consume)
        thread.start()
        feeder.abort("torn down")
        thread.join(5)
        assert caught["reason"] == "torn down"

    def test_bytes_fed_accounting(self):
        feeder = ChunkFeeder()
        feeder.feed(b"abc")
        feeder.feed(b"")
        feeder.feed(b"defg")
        assert feeder.bytes_fed == 7


class TestAnalysisSession:
    def test_chunked_feed_matches_one_shot_analysis(self):
        data = flood_bytes(6)
        session = AnalysisSession("s1")
        for i in range(0, len(data), 1024):
            session.feed(data[i : i + 1024])
        session.finish()
        assert session.wait(30)
        assert session.state == "done"
        etag, body = session.snapshot_report()

        report = analyze_pcap(io.BytesIO(data))
        reference = ReportRenderer(
            health=report.health, degradation=report.degradation
        )
        reference.extend(list(report))
        reference.finish()
        ref_etag, ref_body = reference.render_report()
        assert etag == ref_etag
        assert body == ref_body

    def test_budgeted_session_reports_degradation(self):
        budget = ResourceBudget(max_live_connections=4)
        data = flood_bytes(32)  # every flow open at once
        session = AnalysisSession("s2", budget=budget)
        session.feed(data)
        session.finish()
        assert session.wait(30)
        assert session.state == "done"
        degradation = session.renderer.degradation
        assert degradation is not None
        assert degradation.degraded
        assert degradation.peak_live_connections <= 4
        status = session.status()
        assert status["degraded"] is True

    def test_garbage_input_fails_gracefully_not_fatally(self):
        session = AnalysisSession("s3")
        session.feed(b"this is not a pcap file at all, not even close")
        session.finish()
        assert session.wait(30)
        # Tolerant ingest swallows the damage into health; the session
        # ends without a usable capture but never crashes the server.
        assert session.state in ("done", "failed")
        etag, body = session.snapshot_health()
        assert etag.startswith('"')

    def test_feed_after_finish_is_a_conflict(self):
        session = AnalysisSession("s4")
        session.finish()
        with pytest.raises(ServeError) as excinfo:
            session.feed(b"late bytes")
        assert excinfo.value.status == 409
        session.wait(30)


class TestSessionManager:
    def test_ids_are_deterministic_and_sequential(self):
        manager = SessionManager()
        ids = [manager.create().id for _ in range(3)]
        assert ids == ["s0001", "s0002", "s0003"]
        manager.drain(timeout=10)

    def test_session_cap_is_enforced_on_live_sessions(self):
        manager = SessionManager(max_sessions=2)
        first = manager.create()
        manager.create()
        with pytest.raises(ServeError) as excinfo:
            manager.create()
        assert excinfo.value.status == 429
        # A finished session frees its slot.
        first.finish()
        assert first.wait(30)
        manager.create()
        manager.drain(timeout=10)

    def test_get_and_remove_unknown_session_404(self):
        manager = SessionManager()
        with pytest.raises(ServeError) as excinfo:
            manager.get("nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServeError):
            manager.remove("nope")

    def test_drain_flushes_all_sessions_and_blocks_creates(self):
        manager = SessionManager()
        session = manager.create()
        session.feed(flood_bytes(3))
        assert manager.drain(timeout=30)
        assert session.state == "done"
        with pytest.raises(ServeError) as excinfo:
            manager.create()
        assert excinfo.value.status == 503
