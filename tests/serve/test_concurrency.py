"""Concurrent clients see consistent snapshots; the pool survives races.

The determinism contract under concurrency: every reader polling a
live session observes an *internally consistent* snapshot (the ETag is
the digest of exactly the body it came with, connections appear in
capture order), and once the session finishes, the report is
byte-identical to a one-shot ``analyze_pcap`` of the same bytes.
"""

from __future__ import annotations

import hashlib
import io
import json
import threading

from repro.analysis.render import ReportRenderer, payload_digest
from repro.analysis.tdat import analyze_pcap
from repro.api import AnalysisRequest, Pipeline

from tests.serve.helpers import flood_bytes, running_server


def _reference_body(data: bytes) -> bytes:
    report = analyze_pcap(io.BytesIO(data))
    renderer = ReportRenderer(
        health=report.health, degradation=report.degradation
    )
    renderer.extend(list(report))
    renderer.finish()
    return renderer.render_report()[1]


def _self_consistent(etag: str, body: bytes) -> bool:
    """The ETag must be the digest of exactly this body's payload."""
    payload = json.loads(body)
    return etag == f'"{payload_digest(payload)}"'


class TestInterleavedReaders:
    def test_readers_during_live_upload_see_consistent_snapshots(self):
        data = flood_bytes(16, data_packets=6)
        failures: list[str] = []
        snapshots: list[str] = []
        done = threading.Event()

        with running_server() as client:
            sid = client.create_session()

            def read_loop() -> None:
                while not done.is_set():
                    status, headers, body = client.request(
                        "GET", f"/sessions/{sid}/report"
                    )
                    if status != 200:
                        failures.append(f"reader got {status}")
                        return
                    etag = headers["ETag"]
                    if not _self_consistent(etag, body):
                        failures.append(f"torn snapshot under {etag}")
                        return
                    snapshots.append(etag)

            readers = [
                threading.Thread(target=read_loop, daemon=True)
                for _ in range(4)
            ]
            for reader in readers:
                reader.start()
            # Trickle the upload so readers overlap a moving session.
            for i in range(0, len(data), 2048):
                client.request(
                    "POST", f"/sessions/{sid}/pcap", data[i : i + 2048]
                )
            status, payload = client.json(
                "POST", f"/sessions/{sid}/finish?wait=1"
            )
            assert status == 200 and payload["state"] == "done"
            done.set()
            for reader in readers:
                reader.join(30)
            assert not failures, failures
            assert snapshots, "readers never completed a request"

            _, _, final = client.request("GET", f"/sessions/{sid}/report")
        assert final == _reference_body(data)

    def test_flood_session_stays_in_budget_while_others_answer(self):
        # A deliberately oversubscribed flood in one session must not
        # starve a well-behaved neighbour on the same server.
        flood = flood_bytes(256, data_packets=2, payload_bytes=64)
        small = flood_bytes(4)
        with running_server() as client:
            flood_sid = client.create_session(
                {"budget": {"max_live_connections": 16}}
            )
            neighbour_sid = client.create_session()

            uploader = threading.Thread(
                target=client.upload,
                args=(flood_sid, flood),
                kwargs={"chunk": 4096},
                daemon=True,
            )
            uploader.start()

            # The neighbour gets full service mid-flood.
            client.upload(neighbour_sid, small)
            status, _, body = client.request(
                "GET", f"/sessions/{neighbour_sid}/report"
            )
            assert status == 200
            assert body == _reference_body(small)

            uploader.join(60)
            assert not uploader.is_alive()
            status, payload = client.json("GET", f"/sessions/{flood_sid}")
            assert status == 200 and payload["state"] == "done"
            assert payload["degraded"] is True
            _, report = client.json("GET", f"/sessions/{flood_sid}/report")
            degradation = report["degradation"]
            assert degradation["peak_live_connections"] <= 16


class TestPipelinePoolReuse:
    def test_concurrent_analyze_calls_share_one_pipeline(self):
        # Satellite: the cached pool must survive concurrent callers —
        # each run leases the shared pool or gets a private one, and
        # results stay identical to sequential runs.
        data = flood_bytes(6)
        pipeline = Pipeline(workers=2)
        expected = [a.connection.key for a in analyze_pcap(io.BytesIO(data))]
        results: list = [None] * 6
        errors: list = []

        def run(slot: int) -> None:
            try:
                report = pipeline.run(AnalysisRequest(io.BytesIO(data)))
                results[slot] = [a.connection.key for a in report]
            except Exception as exc:  # noqa: BLE001 — surface to the test
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert not errors, errors
        assert all(r == expected for r in results)

    def test_serving_pipeline_can_still_analyze(self):
        # The long-running serve loop must not hold the pipeline's pool
        # hostage: a second thread doing one-shot analysis works fine.
        data = flood_bytes(4)
        pipeline = Pipeline(workers=2)
        with running_server(pipeline):
            report = pipeline.run(AnalysisRequest(io.BytesIO(data)))
            assert len(report) == 4
