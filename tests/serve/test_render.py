"""The renderer split: one JSON shape, capture order, cached digests."""

from __future__ import annotations

import io
import json

from repro.analysis.render import (
    ReportRenderer,
    analysis_to_dict,
    payload_digest,
    report_payload,
)
from repro.analysis.tdat import analyze_pcap, iter_analyze_pcap

from tests.serve.helpers import flood_bytes


def _reference(data: bytes):
    """One-shot analysis rendered through the same canonical path."""
    report = analyze_pcap(io.BytesIO(data))
    renderer = ReportRenderer(
        health=report.health, degradation=report.degradation
    )
    renderer.extend(list(report))
    renderer.finish()
    return report, renderer.render_report()


class TestPayloadShape:
    def test_report_payload_matches_cli_shape(self):
        data = flood_bytes(5)
        report = analyze_pcap(io.BytesIO(data))
        payload = report_payload(report)
        assert set(payload) == {"connections", "health"}
        assert len(payload["connections"]) == len(report)
        first = payload["connections"][0]
        assert set(first) >= {
            "connection", "sender", "complete", "confidence", "profile",
            "retransmissions", "factors", "detectors",
        }
        assert payload["connections"] == [
            analysis_to_dict(a) for a in report
        ]

    def test_digest_is_deterministic_across_runs(self):
        data = flood_bytes(4)
        one = report_payload(analyze_pcap(io.BytesIO(data)))
        two = report_payload(analyze_pcap(io.BytesIO(data)))
        assert payload_digest(one) == payload_digest(two)


class TestIncrementalRenderer:
    def test_incremental_equals_one_shot_byte_for_byte(self):
        data = flood_bytes(6)
        _, (ref_etag, ref_body) = _reference(data)
        renderer = ReportRenderer()
        for analysis in iter_analyze_pcap(
            io.BytesIO(data), health=renderer.health
        ):
            renderer.add(analysis)
        renderer.finish()
        etag, body = renderer.render_report()
        assert etag == ref_etag
        assert body == ref_body

    def test_close_order_input_renders_in_capture_order(self):
        # Streaming yields flows in close order; the renderer must
        # restore first-packet capture order like analyze_pcap does.
        data = flood_bytes(6)
        renderer = ReportRenderer()
        analyses = list(
            iter_analyze_pcap(io.BytesIO(data), health=renderer.health)
        )
        renderer.extend(reversed(analyses))  # worst-case arrival order
        indices = [
            a.connection.packets[0].index for a in renderer.connections()
        ]
        assert indices == sorted(indices)

    def test_unchanged_state_serves_the_cached_body(self):
        data = flood_bytes(3)
        renderer = ReportRenderer()
        renderer.extend(iter_analyze_pcap(io.BytesIO(data), health=renderer.health))
        etag1, body1 = renderer.render_report()
        etag2, body2 = renderer.render_report()
        assert etag1 == etag2
        assert body2 is body1  # cache hit, not a re-render

    def test_new_state_changes_the_etag(self):
        data = flood_bytes(4)
        analyses = list(iter_analyze_pcap(io.BytesIO(data)))
        renderer = ReportRenderer()
        renderer.add(analyses[0])
        etag1, _ = renderer.render_report()
        renderer.add(analyses[1])
        etag2, _ = renderer.render_report()
        assert etag1 != etag2

    def test_health_snapshot_caches_and_tags_independently(self):
        renderer = ReportRenderer()
        etag1, body1 = renderer.render_health()
        etag2, body2 = renderer.render_health()
        assert etag1 == etag2 and body2 is body1
        renderer.health.record(
            "frame", "undecodable-frame", detail="too short"
        )
        etag3, _ = renderer.render_health()
        assert etag3 != etag1

    def test_rendered_body_is_json_with_stable_keys(self):
        data = flood_bytes(3)
        renderer = ReportRenderer()
        renderer.extend(iter_analyze_pcap(io.BytesIO(data), health=renderer.health))
        renderer.finish()
        _, body = renderer.render_report()
        payload = json.loads(body)
        assert list(payload) == sorted(payload)
        assert body.endswith(b"\n")
