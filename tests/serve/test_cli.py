"""``tdat serve``: startup errors are one-liners, signals drain cleanly."""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
from pathlib import Path

import pytest

from repro.tools import tdat_cli


@pytest.fixture()
def occupied_port():
    """A TCP port some other process (this test) is already bound to."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    sock.listen(1)
    try:
        yield sock.getsockname()[1]
    finally:
        sock.close()


class TestStartupErrors:
    def test_port_in_use_is_a_one_line_error(self, occupied_port, capsys):
        rc = tdat_cli.main(["serve", "--port", str(occupied_port)])
        captured = capsys.readouterr()
        assert rc == tdat_cli.EXIT_ERROR
        assert captured.err.count("\n") == 1
        assert "error:" in captured.err
        assert "Traceback" not in captured.err

    def test_bad_bind_address_is_a_one_line_error(self, capsys):
        rc = tdat_cli.main(
            ["serve", "--host", "203.0.113.213", "--port", "0"]
        )
        captured = capsys.readouterr()
        assert rc == tdat_cli.EXIT_ERROR
        assert captured.err.count("\n") == 1
        assert "error:" in captured.err
        assert "Traceback" not in captured.err


class TestSignalDrain:
    def test_sigterm_drains_and_exits_with_the_drained_code(self, tmp_path):
        src = str(Path(__file__).resolve().parents[2] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.tools.tdat_cli",
                "serve", "--port", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            line = proc.stderr.readline()
            assert "listening on http://" in line, line
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(10)
        assert rc == tdat_cli.EXIT_DRAINED

    def test_help_lists_the_drained_exit_code(self, capsys):
        with pytest.raises(SystemExit):
            tdat_cli.main(["--help"])
        out = capsys.readouterr().out
        assert "server drained on signal" in out
