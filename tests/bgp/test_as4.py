"""Tests for 4-byte AS support (RFC 6793) and OPEN capabilities."""

import struct

import pytest

from repro.bgp.attributes import (
    AS4_PATH,
    AS_SEQUENCE,
    AS_TRANS,
    AsPathSegment,
    PathAttributes,
)
from repro.bgp.messages import (
    CAP_AS4,
    CAP_ROUTE_REFRESH,
    OpenMessage,
    Prefix,
    UpdateMessage,
    decode_message,
    encode_message,
)


class TestAs4Path:
    def test_narrow_path_unchanged(self):
        attrs = PathAttributes.from_path([100, 200], "10.0.0.1")
        raw = attrs.encode()
        assert struct.pack("!H", AS_TRANS) not in raw
        decoded = PathAttributes.decode(raw)
        assert decoded.path_asns() == (100, 200)

    def test_wide_asn_uses_as_trans_plus_as4_path(self):
        attrs = PathAttributes.from_path([100, 400_000, 200], "10.0.0.1")
        raw = attrs.encode()
        # The 2-byte AS_PATH carries AS_TRANS where 400000 was...
        assert struct.pack("!H", AS_TRANS) in raw
        # ...and decoding reconstructs the true path from AS4_PATH.
        decoded = PathAttributes.decode(raw)
        assert decoded.path_asns() == (100, 400_000, 200)

    def test_wide_as_set(self):
        attrs = PathAttributes(
            as_path=(
                AsPathSegment(AS_SEQUENCE, (100,)),
                AsPathSegment(1, (70_000, 80_000)),  # AS_SET
            ),
            next_hop="10.0.0.1",
        )
        decoded = PathAttributes.decode(attrs.encode())
        assert decoded.as_path == attrs.as_path

    def test_update_roundtrip_with_wide_asns(self):
        msg = UpdateMessage(
            announced=(Prefix("10.0.0.0", 8),),
            attributes=PathAttributes.from_path(
                [65001, 4_200_000_000], "10.0.0.1"
            ),
        )
        decoded = decode_message(encode_message(msg))
        assert decoded.attributes.path_asns() == (65001, 4_200_000_000)

    def test_mismatched_as4_path_prefers_wide(self):
        from repro.bgp.attributes import _merge_as4_path

        narrow = (AsPathSegment(AS_SEQUENCE, (AS_TRANS, 1, 2)),)
        wide = (AsPathSegment(AS_SEQUENCE, (99_999,)),)
        merged = _merge_as4_path(narrow, wide)
        assert merged == wide


class TestOpenCapabilities:
    def test_plain_open_roundtrip(self):
        msg = OpenMessage(my_as=65001, hold_time_s=180, bgp_id="1.2.3.4")
        decoded = decode_message(encode_message(msg))
        assert decoded == msg

    def test_wide_as_roundtrip(self):
        msg = OpenMessage(my_as=400_000, hold_time_s=90, bgp_id="1.2.3.4")
        raw = encode_message(msg)
        # The fixed 2-byte field shows AS_TRANS on the wire.
        assert struct.unpack_from("!H", raw, 19 + 1)[0] == 23456
        decoded = decode_message(raw)
        assert decoded.my_as == 400_000

    def test_extra_capabilities_roundtrip(self):
        msg = OpenMessage(
            my_as=65001, hold_time_s=180, bgp_id="1.2.3.4",
            capabilities=((CAP_ROUTE_REFRESH, b""),),
        )
        decoded = decode_message(encode_message(msg))
        assert decoded.supports(CAP_ROUTE_REFRESH)
        assert not decoded.supports(CAP_AS4)

    def test_wide_as_with_extra_capabilities(self):
        msg = OpenMessage(
            my_as=200_000, hold_time_s=180, bgp_id="1.2.3.4",
            capabilities=((CAP_ROUTE_REFRESH, b""),),
        )
        decoded = decode_message(encode_message(msg))
        assert decoded.my_as == 200_000
        assert decoded.supports(CAP_ROUTE_REFRESH)

    def test_truncated_capabilities_rejected(self):
        from repro.bgp.messages import BgpError

        msg = OpenMessage(my_as=400_000, hold_time_s=180, bgp_id="1.2.3.4")
        raw = bytearray(encode_message(msg))
        raw[19 + 9] = 50  # inflate opt_len beyond the body
        # Header length field must also grow for the parser to look.
        with pytest.raises(BgpError):
            from repro.bgp.messages import OpenMessage as OM

            OM.from_body(bytes(raw[19:]))


class TestAs4Session:
    def test_session_with_wide_asn_transfers(self):
        import random

        from repro.bgp.table import generate_table
        from repro.core.units import seconds
        from repro.netsim.simulator import Simulator
        from repro.workloads.scenarios import MonitoringSetup, RouterParams

        sim = Simulator()
        setup = MonitoringSetup(sim)
        table = generate_table(500, random.Random(95))
        handle = setup.add_router(
            RouterParams(
                name="r1", ip="10.95.0.1", table=table, local_as=4_200_000_123
            )
        )
        setup.start()
        sim.run(until_us=seconds(60))
        assert setup.collector.updates_archived == len(table.to_updates())
        # The collector's session learned the peer's true 4-byte AS.
        session = setup.collector.sessions[0]
        assert session.peer_open.my_as == 4_200_000_123
