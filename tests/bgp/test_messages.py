"""Unit tests for BGP message and attribute codecs."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bgp.attributes import (
    AS_SEQUENCE,
    AS_SET,
    ORIGIN_INCOMPLETE,
    AsPathSegment,
    PathAttributes,
)
from repro.bgp.messages import (
    MARKER,
    BgpError,
    KeepaliveMessage,
    MessageDecoder,
    NotificationMessage,
    OpenMessage,
    Prefix,
    UpdateMessage,
    decode_message,
    decode_prefixes,
    encode_message,
)


class TestPrefix:
    def test_str_and_parse(self):
        p = Prefix.parse("192.0.2.0/24")
        assert str(p) == "192.0.2.0/24"
        assert p.length == 24

    def test_invalid_length(self):
        with pytest.raises(BgpError):
            Prefix("10.0.0.0", 33)

    def test_encode_minimal_bytes(self):
        assert Prefix("10.0.0.0", 8).encode() == b"\x08\x0a"
        assert Prefix("192.0.2.0", 24).encode() == b"\x18\xc0\x00\x02"
        assert Prefix("0.0.0.0", 0).encode() == b"\x00"

    def test_decode_prefixes_roundtrip(self):
        prefixes = [
            Prefix("10.0.0.0", 8),
            Prefix("172.16.0.0", 12),
            Prefix("192.0.2.128", 25),
        ]
        blob = b"".join(p.encode() for p in prefixes)
        assert decode_prefixes(blob) == prefixes

    def test_decode_truncated(self):
        with pytest.raises(BgpError):
            decode_prefixes(b"\x18\xc0")

    def test_decode_bad_length(self):
        with pytest.raises(BgpError):
            decode_prefixes(b"\x40\x01")


class TestPathAttributes:
    def test_roundtrip_basic(self):
        attrs = PathAttributes.from_path([65001, 65002, 3356], "10.1.2.3")
        decoded = PathAttributes.decode(attrs.encode())
        assert decoded.path_asns() == (65001, 65002, 3356)
        assert decoded.next_hop == "10.1.2.3"

    def test_roundtrip_all_fields(self):
        attrs = PathAttributes.from_path(
            [1, 2], "10.0.0.1", origin=ORIGIN_INCOMPLETE, med=100, local_pref=200
        )
        decoded = PathAttributes.decode(attrs.encode())
        assert decoded == attrs

    def test_as_set_segment(self):
        attrs = PathAttributes(
            as_path=(
                AsPathSegment(AS_SEQUENCE, (1, 2)),
                AsPathSegment(AS_SET, (3, 4, 5)),
            ),
            next_hop="10.0.0.1",
        )
        decoded = PathAttributes.decode(attrs.encode())
        assert decoded.as_path == attrs.as_path

    def test_empty_as_path(self):
        attrs = PathAttributes.from_path([], "10.0.0.1")
        decoded = PathAttributes.decode(attrs.encode())
        assert decoded.path_asns() == ()

    def test_truncated_attribute(self):
        from repro.bgp.attributes import AttributeError_

        attrs = PathAttributes.from_path([1], "10.0.0.1")
        with pytest.raises(AttributeError_):
            PathAttributes.decode(attrs.encode()[:-2])

    @given(st.lists(st.integers(min_value=1, max_value=65535), max_size=20))
    def test_as_path_roundtrip_property(self, asns):
        attrs = PathAttributes.from_path(asns, "192.0.2.1")
        assert PathAttributes.decode(attrs.encode()).path_asns() == tuple(asns)


class TestMessages:
    def test_open_roundtrip(self):
        msg = OpenMessage(my_as=65000, hold_time_s=180, bgp_id="10.0.0.1")
        decoded = decode_message(encode_message(msg))
        assert decoded == msg

    def test_keepalive_roundtrip(self):
        raw = encode_message(KeepaliveMessage())
        assert len(raw) == 19
        assert decode_message(raw) == KeepaliveMessage()

    def test_notification_roundtrip(self):
        msg = NotificationMessage(error_code=4, error_subcode=0, data=b"why")
        assert decode_message(encode_message(msg)) == msg

    def test_update_roundtrip(self):
        msg = UpdateMessage(
            announced=(Prefix("10.0.0.0", 8), Prefix("192.0.2.0", 24)),
            attributes=PathAttributes.from_path([65001], "10.0.0.1"),
            withdrawn=(Prefix("172.16.0.0", 12),),
        )
        assert decode_message(encode_message(msg)) == msg

    def test_withdraw_only_update(self):
        msg = UpdateMessage(withdrawn=(Prefix("10.0.0.0", 8),))
        decoded = decode_message(encode_message(msg))
        assert decoded.attributes is None
        assert decoded.withdrawn == msg.withdrawn

    def test_bad_marker_rejected(self):
        raw = bytearray(encode_message(KeepaliveMessage()))
        raw[0] = 0
        with pytest.raises(BgpError):
            decode_message(bytes(raw))

    def test_trailing_bytes_rejected(self):
        raw = encode_message(KeepaliveMessage()) + b"\x00"
        with pytest.raises(BgpError):
            decode_message(raw)

    def test_oversized_message_rejected(self):
        msg = UpdateMessage(
            announced=tuple(
                Prefix(f"10.{i >> 8}.{i & 255}.0", 24) for i in range(1500)
            ),
            attributes=PathAttributes.from_path([1], "10.0.0.1"),
        )
        with pytest.raises(BgpError):
            encode_message(msg)

    def test_unknown_type_rejected(self):
        raw = bytearray(encode_message(KeepaliveMessage()))
        raw[18] = 9
        with pytest.raises(BgpError):
            decode_message(bytes(raw))


class TestMessageDecoder:
    def messages(self):
        return [
            OpenMessage(my_as=1, hold_time_s=180, bgp_id="1.1.1.1"),
            KeepaliveMessage(),
            UpdateMessage(
                announced=(Prefix("10.0.0.0", 8),),
                attributes=PathAttributes.from_path([1, 2], "10.0.0.1"),
            ),
            KeepaliveMessage(),
        ]

    def test_whole_stream_at_once(self):
        stream = b"".join(encode_message(m) for m in self.messages())
        decoder = MessageDecoder()
        assert decoder.feed(stream) == self.messages()
        assert decoder.pending_bytes == 0

    def test_byte_by_byte(self):
        stream = b"".join(encode_message(m) for m in self.messages())
        decoder = MessageDecoder()
        out = []
        for i in range(len(stream)):
            out.extend(decoder.feed(stream[i : i + 1]))
        assert out == self.messages()

    def test_random_chunking(self):
        stream = b"".join(encode_message(m) for m in self.messages())
        rng = random.Random(7)
        decoder = MessageDecoder()
        out = []
        i = 0
        while i < len(stream):
            n = rng.randint(1, 40)
            out.extend(decoder.feed(stream[i : i + n]))
            i += n
        assert out == self.messages()
        assert decoder.messages_decoded == 4

    def test_desync_detected(self):
        decoder = MessageDecoder()
        with pytest.raises(BgpError):
            decoder.feed(b"\x00" * 19)

    def test_partial_message_pends(self):
        raw = encode_message(KeepaliveMessage())
        decoder = MessageDecoder()
        assert decoder.feed(raw[:10]) == []
        assert decoder.pending_bytes == 10
        assert decoder.feed(raw[10:]) == [KeepaliveMessage()]

    def test_marker_constant(self):
        assert MARKER == b"\xff" * 16


class TestMessageDecoderResync:
    """RFC 7606-spirit containment: one bad message, not a dead session."""

    def stream(self):
        messages = [
            OpenMessage(my_as=1, hold_time_s=180, bgp_id="1.1.1.1"),
            KeepaliveMessage(),
            UpdateMessage(
                announced=(Prefix("10.0.0.0", 8),),
                attributes=PathAttributes.from_path([1, 2], "10.0.0.1"),
            ),
            KeepaliveMessage(),
        ]
        return messages, [encode_message(m) for m in messages]

    def test_garbage_prefix_skipped(self):
        messages, encoded = self.stream()
        garbage = b"\x00\x01\x02" * 7
        decoder = MessageDecoder(resync=True)
        got = decoder.feed(garbage + b"".join(encoded))
        assert got == messages
        assert decoder.resync_count == 1
        assert decoder.bytes_skipped == len(garbage)

    def test_corrupt_marker_costs_one_message(self):
        messages, encoded = self.stream()
        damaged = bytearray(encoded[1])
        damaged[3] ^= 0xFF  # break the KEEPALIVE's marker
        blob = encoded[0] + bytes(damaged) + encoded[2] + encoded[3]
        issues = []
        decoder = MessageDecoder(
            resync=True,
            on_issue=lambda kind, lost, detail: issues.append(kind),
        )
        got = decoder.feed(blob)
        assert got == [messages[0], messages[2], messages[3]]
        assert "bad-marker" in issues
        assert decoder.bytes_skipped > 0

    def test_bad_length_field_recovers(self):
        messages, encoded = self.stream()
        bogus = MARKER + b"\x00\x05\x04"  # length 5 < minimum header
        decoder = MessageDecoder(resync=True)
        got = decoder.feed(encoded[0] + bogus + b"".join(encoded[1:]))
        assert got == messages

    def test_malformed_body_costs_only_itself(self):
        messages, encoded = self.stream()
        # Valid framing, impossible body: KEEPALIVE with trailing bytes.
        bogus = MARKER + b"\x00\x15\x04" + b"xx"
        issues = []
        decoder = MessageDecoder(
            resync=True,
            on_issue=lambda kind, lost, detail: issues.append((kind, lost)),
        )
        got = decoder.feed(encoded[0] + bogus + b"".join(encoded[1:]))
        assert got == messages
        assert ("malformed-message", len(bogus)) in issues

    def test_byte_by_byte_resync(self):
        messages, encoded = self.stream()
        damaged = bytearray(encoded[2])
        damaged[0] ^= 0x01
        blob = encoded[0] + encoded[1] + bytes(damaged) + encoded[3]
        decoder = MessageDecoder(resync=True)
        got = []
        for i in range(len(blob)):
            got.extend(decoder.feed(blob[i : i + 1]))
        assert got == [messages[0], messages[1], messages[3]]

    def test_without_resync_still_raises(self):
        _, encoded = self.stream()
        decoder = MessageDecoder()
        with pytest.raises(BgpError):
            decoder.feed(b"junk" * 5 + encoded[0])
