"""Integration tests: BGP sessions, sender models, peer groups, collectors."""

import random

import pytest

from repro.bgp.collector import CollectorCpu, QuaggaCollector, VendorCollector
from repro.bgp.peer_group import PeerGroup
from repro.bgp.sender_models import ImmediateSender, RateLimitedSender, TimerBatchSender
from repro.bgp.speaker import BgpSession, BgpSessionState
from repro.bgp.table import generate_table
from repro.core.units import seconds
from repro.netsim.simulator import Simulator
from repro.tcp.options import TcpConfig
from repro.tcp.socket import connect_pair

from tests.tcp.helpers import Net


def build_peering(sim, net, sender_model=None, rib=None,
                  hold_time_s=180, collector_auto_read=True,
                  client_tcp=None, server_tcp=None):
    """Router (active, on host a) peering with a monitor (passive, host b)."""
    client_ep, server_ep = connect_pair(
        sim, net.a, net.b, 40000, 179,
        client_config=client_tcp, server_config=server_tcp,
    )
    router = BgpSession(
        sim, client_ep, local_as=65001, bgp_id="10.0.0.1",
        hold_time_s=hold_time_s, rib=rib, sender_model=sender_model,
        on_established=lambda s: s.announce_table(),
    )
    monitor = BgpSession(
        sim, server_ep, local_as=65000, bgp_id="10.0.0.2",
        hold_time_s=hold_time_s, auto_read=collector_auto_read,
    )
    return router, monitor


class TestSessionEstablishment:
    def test_open_exchange_establishes_both(self):
        sim = Simulator()
        net = Net(sim)
        router, monitor = build_peering(sim, net)
        sim.run(until_us=seconds(2))
        assert router.state is BgpSessionState.ESTABLISHED
        assert monitor.state is BgpSessionState.ESTABLISHED
        assert router.peer_open.my_as == 65000
        assert monitor.peer_open.my_as == 65001

    def test_hold_time_negotiated_to_minimum(self):
        sim = Simulator()
        net = Net(sim)
        router, monitor = build_peering(sim, net, hold_time_s=180)
        monitor.configured_hold_time_s = 90
        sim.run(until_us=seconds(2))
        assert router.hold_time_s == 90
        assert monitor.hold_time_s == 90

    def test_keepalives_flow(self):
        sim = Simulator()
        net = Net(sim)
        router, monitor = build_peering(sim, net, hold_time_s=3)
        sim.run(until_us=seconds(30))
        # Sessions stay up because keepalives (hold/3 = 1s) keep flowing.
        assert router.state is BgpSessionState.ESTABLISHED
        assert monitor.state is BgpSessionState.ESTABLISHED

    def test_hold_timer_fires_when_peer_dies(self):
        sim = Simulator()
        net = Net(sim)
        downs = []
        router, monitor = build_peering(sim, net, hold_time_s=9)
        router.on_down = lambda s, reason: downs.append((sim.now, reason))
        sim.schedule(seconds(2), monitor.endpoint.kill)
        sim.schedule(seconds(2), monitor._hold_timer.stop)
        sim.schedule(seconds(2), monitor._keepalive_timer.stop)
        sim.run(until_us=seconds(30))
        assert router.state is BgpSessionState.IDLE
        assert downs and downs[0][1] == "hold-timer-expired"
        # Expiry ~9s after the last received keepalive.
        assert seconds(9) <= downs[0][0] <= seconds(12)


class TestTableTransfer:
    def test_immediate_sender_full_transfer(self):
        sim = Simulator()
        net = Net(sim)
        rib = generate_table(800, random.Random(1))
        router, monitor = build_peering(
            sim, net, sender_model=ImmediateSender(), rib=rib
        )
        sim.run(until_us=seconds(60))
        assert monitor.updates_received == len(rib.to_updates())

    def test_timer_batch_sender_is_slower(self):
        rib = generate_table(600, random.Random(2))
        expected = len(rib.to_updates())

        def run(model_factory):
            sim = Simulator()
            net = Net(sim)
            done = []
            router, monitor = build_peering(
                sim, net, sender_model=model_factory(sim), rib=rib
            )

            def on_update(session, update, ts):
                if session.updates_received == expected:
                    done.append(ts)

            monitor.on_update = on_update
            sim.run(until_us=seconds(300))
            assert done, "transfer incomplete"
            return done[0]

        fast = run(lambda sim: ImmediateSender())
        slow = run(lambda sim: TimerBatchSender(sim, 200_000, 2))
        assert slow > fast * 2

    def test_timer_batch_gap_structure(self):
        # With 2 messages per 200ms tick, 20 messages need 10 ticks: the
        # transfer lasts at least 1.8 seconds.
        sim = Simulator()
        net = Net(sim)
        rib = generate_table(1500, random.Random(3))
        updates = rib.to_updates()
        assert len(updates) >= 20
        times = []
        router, monitor = build_peering(
            sim, net, sender_model=TimerBatchSender(sim, 200_000, 2), rib=rib
        )
        monitor.on_update = lambda s, u, ts: times.append(ts)
        sim.run(until_us=seconds(120))
        assert len(times) == len(updates)
        assert times[-1] - times[0] >= seconds(1.5)

    def test_rate_limited_sender(self):
        sim = Simulator()
        net = Net(sim)
        rib = generate_table(400, random.Random(4))
        size = rib.wire_size()
        times = []
        router, monitor = build_peering(
            sim, net, sender_model=RateLimitedSender(sim, 5_000), rib=rib
        )
        monitor.on_update = lambda s, u, ts: times.append(ts)
        sim.run(until_us=seconds(600))
        assert len(times) == len(rib.to_updates())
        observed_rate = size / ((times[-1] - times[0]) / 1e6)
        assert observed_rate == pytest.approx(5_000, rel=0.4)


class TestPeerGroup:
    def build_group(self, sim, hold_time_s=12):
        """One router host fanning out to two collector hosts."""
        from repro.netsim.link import Link
        from repro.netsim.node import Host

        router_host = Host("rtr", "10.0.0.1")
        quagga_host = Host("quagga", "10.0.0.2")
        vendor_host = Host("vendor", "10.0.0.3")
        links = {}
        for host in (quagga_host, vendor_host):
            up = Link(sim, f"up-{host.name}", 80_000_000, 5_000, deliver=host.deliver)
            down = Link(sim, f"dn-{host.name}", 80_000_000, 5_000,
                        deliver=router_host.deliver)
            router_host.add_route(host.ip, up.send)
            host.add_route(router_host.ip, down.send)
            links[host.name] = (up, down)
        sessions = []
        for port, host in ((40001, quagga_host), (40002, vendor_host)):
            client_ep, server_ep = connect_pair(
                sim, router_host, host, port, 179
            )
            router_side = BgpSession(
                sim, client_ep, local_as=65001, bgp_id="10.0.0.1",
                hold_time_s=hold_time_s,
            )
            monitor_side = BgpSession(
                sim, server_ep, local_as=65000, bgp_id=host.ip,
                hold_time_s=hold_time_s,
            )
            sessions.append((router_side, monitor_side))
        return router_host, sessions

    def test_replication_reaches_all_members(self):
        sim = Simulator()
        _, sessions = self.build_group(sim)
        rib = generate_table(300, random.Random(5))
        group = PeerGroup(sim, [s[0] for s in sessions])
        sim.run(until_us=seconds(2))  # establish
        n = group.announce_table(rib)
        sim.run(until_us=seconds(120))
        for _, monitor in sessions:
            assert monitor.updates_received == n

    def test_failed_member_blocks_then_releases_group(self):
        sim = Simulator()
        _, sessions = self.build_group(sim, hold_time_s=12)
        (router_q, monitor_q), (router_v, monitor_v) = sessions
        rib = generate_table(4000, random.Random(6))
        # Slow replication: 2 messages per 50ms round, so the ~67-update
        # transfer lasts about two seconds and the failure lands mid-way.
        group = PeerGroup(
            sim, [router_q, router_v], batch_messages=2, poll_interval_us=50_000
        )
        quagga_times = []
        monitor_q.on_update = lambda s, u, ts: quagga_times.append(ts)

        def kill_vendor():
            monitor_v.endpoint.kill()
            monitor_v._hold_timer.stop()
            monitor_v._keepalive_timer.stop()

        sim.run(until_us=seconds(2))
        group.announce_table(rib)
        sim.schedule(500_000, kill_vendor)  # t1: vendor box dies mid-transfer
        sim.run(until_us=seconds(120))
        # Quagga received the full table eventually.
        assert monitor_q.updates_received == len(rib.to_updates())
        # But there is a long gap (~hold time) in its update arrivals.
        gaps = [b - a for a, b in zip(quagga_times, quagga_times[1:])]
        assert max(gaps) >= seconds(8)
        # The vendor session went down via hold timer and left the group.
        assert router_v.state is BgpSessionState.IDLE
        assert router_v not in group.active

    def test_group_without_members_rejected(self):
        with pytest.raises(ValueError):
            PeerGroup(Simulator(), [])


class TestCollector:
    def build_collector_peering(self, sim, net, cpu=None,
                                collector_cls=QuaggaCollector, table_size=500):
        collector = collector_cls(
            sim, net.b, local_as=65000, bgp_id="10.0.0.2", cpu=cpu
        )
        client_ep, server_ep = connect_pair(sim, net.a, net.b, 40000, 179)
        session = collector.add_session(server_ep, peer_as=65001, peer_ip="10.0.0.1")
        rib = generate_table(table_size, random.Random(7))
        router = BgpSession(
            sim, client_ep, local_as=65001, bgp_id="10.0.0.1", rib=rib,
            on_established=lambda s: s.announce_table(),
        )
        return collector, router, rib

    def test_quagga_archives_mrt(self, tmp_path):
        sim = Simulator()
        net = Net(sim)
        collector, router, rib = self.build_collector_peering(sim, net)
        sim.run(until_us=seconds(120))
        assert collector.updates_archived == len(rib.to_updates())
        assert len(collector.rib) == len(rib)
        path = tmp_path / "archive.mrt"
        count = collector.write_archive(path)
        from repro.bgp.mrt import read_mrt

        records = list(read_mrt(path))
        assert len(records) == count
        # Timestamps are monotonically non-decreasing.
        stamps = [r.timestamp_us for r in records]
        assert stamps == sorted(stamps)

    def test_vendor_collector_no_archive(self):
        sim = Simulator()
        net = Net(sim)
        collector, router, rib = self.build_collector_peering(
            sim, net, collector_cls=VendorCollector
        )
        sim.run(until_us=seconds(120))
        assert collector.updates_archived == 0
        assert len(collector.rib) == len(rib)

    def test_slow_cpu_closes_window(self):
        sim = Simulator()
        net = Net(sim)
        slow_cpu = CollectorCpu(sim, per_message_us=20_000)  # 20ms per msg
        collector, router, rib = self.build_collector_peering(
            sim, net, cpu=slow_cpu, table_size=12_000
        )
        session = collector.sessions[0]
        min_window = []

        def sample():
            min_window.append(session.endpoint.receiver.advertised_window)
            sim.schedule(10_000, sample)

        sim.schedule(100_000, sample)
        sim.run(until_us=seconds(600))
        assert len(collector.rib) == len(rib)
        # During the transfer the advertised window was squeezed.
        assert min(min_window) < 20_000

    def test_collector_kill_silences_sessions(self):
        sim = Simulator()
        net = Net(sim)
        collector, router, rib = self.build_collector_peering(sim, net)
        router.hold_time_s = 9
        router.configured_hold_time_s = 9
        downs = []
        router.on_down = lambda s, r: downs.append(r)
        sim.schedule(seconds(1), collector.kill)
        sim.run(until_us=seconds(60))
        assert "hold-timer-expired" in downs
