"""Tests for TABLE_DUMP_V2 RIB snapshots."""

import io
import random

import pytest

from repro.bgp.mrt import MrtError, RibSnapshot, read_rib_snapshot
from repro.bgp.table import generate_table
from repro.core.units import seconds


def make_snapshot(size=50, ts=seconds(1_300_000_000)):
    table = generate_table(size, random.Random(81))
    return RibSnapshot(
        timestamp_us=ts,
        collector_id="10.255.0.1",
        peer_as=65001,
        peer_ip="10.1.0.1",
        entries=tuple((r.prefix, r.attributes) for r in table),
    ), table


class TestRibSnapshotCodec:
    def test_roundtrip(self):
        snapshot, table = make_snapshot()
        decoded = read_rib_snapshot(io.BytesIO(snapshot.encode()))
        assert decoded.collector_id == "10.255.0.1"
        assert decoded.peer_as == 65001
        assert decoded.peer_ip == "10.1.0.1"
        assert len(decoded.entries) == len(table)
        assert set(str(p) for p, _ in decoded.entries) == set(
            str(p) for p in table.prefixes()
        )

    def test_attributes_preserved(self):
        snapshot, table = make_snapshot(size=20)
        decoded = read_rib_snapshot(io.BytesIO(snapshot.encode()))
        originals = {str(r.prefix): r.attributes for r in table}
        for prefix, attributes in decoded.entries:
            assert originals[str(prefix)] == attributes

    def test_empty_snapshot(self):
        snapshot = RibSnapshot(
            timestamp_us=0, collector_id="1.1.1.1", peer_as=1,
            peer_ip="2.2.2.2", entries=(),
        )
        decoded = read_rib_snapshot(io.BytesIO(snapshot.encode()))
        assert decoded.entries == ()

    def test_second_granularity_timestamp(self):
        snapshot, _ = make_snapshot(size=2, ts=seconds(100) + 123)
        decoded = read_rib_snapshot(io.BytesIO(snapshot.encode()))
        assert decoded.timestamp_us == seconds(100)  # truncated to seconds

    def test_garbage_rejected(self):
        with pytest.raises(MrtError):
            read_rib_snapshot(io.BytesIO(b"\x00" * 40))


class TestCollectorSnapshot:
    def test_collector_writes_its_rib(self, tmp_path):
        from repro.netsim.simulator import Simulator
        from repro.workloads.scenarios import MonitoringSetup, RouterParams

        sim = Simulator()
        setup = MonitoringSetup(sim)
        table = generate_table(500, random.Random(82))
        setup.add_router(RouterParams(name="r1", ip="10.1.0.1", table=table))
        setup.start()
        sim.run(until_us=seconds(60))
        path = tmp_path / "rib.dump"
        count = setup.collector.write_rib_snapshot(
            path, peer_as=65001, peer_ip="10.1.0.1"
        )
        assert count == len(table)
        decoded = read_rib_snapshot(path)
        assert len(decoded.entries) == len(table)
        assert decoded.peer_ip == "10.1.0.1"
