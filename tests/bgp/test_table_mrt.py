"""Unit tests for the RIB, table generator and MRT codec."""

import io
import random

import pytest

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import (
    KeepaliveMessage,
    Prefix,
    UpdateMessage,
    decode_message,
    encode_message,
)
from repro.bgp.mrt import MrtRecord, read_mrt, write_mrt
from repro.bgp.table import Rib, Route, generate_table


class TestRib:
    def route(self, cidr, path=(65001,)):
        return Route(Prefix.parse(cidr), PathAttributes.from_path(list(path), "10.0.0.1"))

    def test_add_lookup_len(self):
        rib = Rib([self.route("10.0.0.0/8"), self.route("192.0.2.0/24")])
        assert len(rib) == 2
        assert rib.lookup(Prefix("10.0.0.0", 8)) is not None
        assert Prefix("10.0.0.0", 8) in rib

    def test_replace_same_prefix(self):
        rib = Rib()
        rib.add(self.route("10.0.0.0/8", path=(1,)))
        rib.add(self.route("10.0.0.0/8", path=(2,)))
        assert len(rib) == 1
        assert rib.lookup(Prefix("10.0.0.0", 8)).attributes.path_asns() == (2,)

    def test_withdraw(self):
        rib = Rib([self.route("10.0.0.0/8")])
        removed = rib.withdraw(Prefix("10.0.0.0", 8))
        assert removed is not None
        assert len(rib) == 0
        assert rib.withdraw(Prefix("10.0.0.0", 8)) is None

    def test_to_updates_groups_by_attributes(self):
        shared = PathAttributes.from_path([1, 2], "10.0.0.1")
        other = PathAttributes.from_path([3], "10.0.0.1")
        rib = Rib(
            [
                Route(Prefix("10.1.0.0", 16), shared),
                Route(Prefix("10.2.0.0", 16), shared),
                Route(Prefix("10.3.0.0", 16), other),
            ]
        )
        updates = rib.to_updates()
        assert len(updates) == 2
        sizes = sorted(len(u.announced) for u in updates)
        assert sizes == [1, 2]

    def test_to_updates_respects_message_limit(self):
        shared = PathAttributes.from_path([1], "10.0.0.1")
        rib = Rib(
            [
                Route(Prefix(f"10.{i // 256}.{i % 256}.0", 24), shared)
                for i in range(2000)
            ]
        )
        updates = rib.to_updates()
        assert len(updates) > 1
        for update in updates:
            assert len(encode_message(update)) <= 4096
        total = sum(len(u.announced) for u in updates)
        assert total == 2000

    def test_updates_reconstruct_table(self):
        rng = random.Random(3)
        rib = generate_table(500, rng)
        rebuilt = Rib()
        for update in rib.to_updates():
            for prefix in update.announced:
                rebuilt.add(Route(prefix, update.attributes))
        assert len(rebuilt) == 500
        assert sorted(map(str, rebuilt.prefixes())) == sorted(map(str, rib.prefixes()))

    def test_wire_size_positive(self):
        rib = generate_table(100, random.Random(1))
        assert rib.wire_size() > 100 * 4


class TestGenerateTable:
    def test_exact_size_and_uniqueness(self):
        rib = generate_table(1000, random.Random(42))
        assert len(rib) == 1000
        assert len({str(p) for p in rib.prefixes()}) == 1000

    def test_deterministic_for_seed(self):
        a = generate_table(200, random.Random(5))
        b = generate_table(200, random.Random(5))
        assert [str(p) for p in a.prefixes()] == [str(p) for p in b.prefixes()]

    def test_prefix_length_distribution(self):
        rib = generate_table(2000, random.Random(9))
        lengths = [p.length for p in rib.prefixes()]
        frac_24 = sum(1 for l in lengths if l == 24) / len(lengths)
        assert 0.4 < frac_24 < 0.7  # /24 dominates the real table
        assert all(8 <= l <= 24 for l in lengths)

    def test_attribute_sharing(self):
        rib = generate_table(1200, random.Random(4))
        distinct = {route.attributes for route in rib}
        assert len(distinct) <= 1200 // 10

    def test_realistic_wire_size(self):
        # The paper: ~5-8 MB for ~300K prefixes (~20 B/prefix with
        # headers amortized). Scaled: 3K prefixes -> roughly 12-60 KB.
        rib = generate_table(3000, random.Random(8))
        assert 10_000 < rib.wire_size() < 60_000

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            generate_table(-1, random.Random(0))

    def test_empty_table(self):
        rib = generate_table(0, random.Random(0))
        assert len(rib) == 0
        assert rib.to_updates() == []


class TestMrt:
    def records(self):
        update = UpdateMessage(
            announced=(Prefix("10.0.0.0", 8),),
            attributes=PathAttributes.from_path([65001], "10.0.0.1"),
        )
        return [
            MrtRecord(
                timestamp_us=1_300_000_000_500_000,
                peer_as=65001,
                local_as=65000,
                peer_ip="10.0.0.1",
                local_ip="10.0.0.2",
                message=update,
            ),
            MrtRecord(
                timestamp_us=1_300_000_001_000_000,  # whole second
                peer_as=65001,
                local_as=65000,
                peer_ip="10.0.0.1",
                local_ip="10.0.0.2",
                message=KeepaliveMessage(),
            ),
        ]

    def test_roundtrip_memory(self):
        buffer = io.BytesIO()
        write_mrt(buffer, self.records())
        buffer.seek(0)
        got = list(read_mrt(buffer))
        assert got == self.records()

    def test_roundtrip_file(self, tmp_path):
        path = tmp_path / "updates.mrt"
        write_mrt(path, self.records())
        got = list(read_mrt(path))
        assert got == self.records()

    def test_microsecond_precision_preserved(self):
        buffer = io.BytesIO()
        write_mrt(buffer, self.records()[:1])
        buffer.seek(0)
        (got,) = read_mrt(buffer)
        assert got.timestamp_us == 1_300_000_000_500_000

    def test_truncated_record_raises(self):
        buffer = io.BytesIO()
        write_mrt(buffer, self.records())
        data = buffer.getvalue()
        from repro.bgp.mrt import MrtError

        with pytest.raises(MrtError):
            list(read_mrt(io.BytesIO(data[:-3])))
