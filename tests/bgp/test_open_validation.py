"""Tests for RFC 4271 section 6.2 OPEN validation."""

import pytest

from repro.bgp.messages import (
    OPEN_ERR_BAD_PEER_AS,
    OPEN_ERR_UNACCEPTABLE_HOLD_TIME,
    OPEN_ERR_UNSUPPORTED_VERSION,
    NotificationMessage,
    OpenMessage,
)
from repro.bgp.speaker import BgpSession, BgpSessionState
from repro.core.units import seconds
from repro.netsim.simulator import Simulator
from repro.tcp.socket import connect_pair

from tests.tcp.helpers import Net


def build_sessions(sim, net, **kwargs_a):
    client_ep, server_ep = connect_pair(sim, net.a, net.b, 40000, 179)
    a = BgpSession(
        sim, client_ep, local_as=65001, bgp_id="10.0.0.1", **kwargs_a
    )
    b = BgpSession(sim, server_ep, local_as=65000, bgp_id="10.0.0.2")
    return a, b


class TestOpenValidation:
    def test_expected_peer_as_accepts_match(self):
        sim = Simulator()
        net = Net(sim)
        a, b = build_sessions(sim, net, expected_peer_as=65000)
        sim.run(until_us=seconds(2))
        assert a.state is BgpSessionState.ESTABLISHED

    def test_as_mismatch_rejected_with_notification(self):
        sim = Simulator()
        net = Net(sim)
        downs = []
        notifications = []
        a, b = build_sessions(sim, net, expected_peer_as=64999)
        a.on_down = lambda s, r: downs.append(r)

        def watch(session, message, ts):
            if isinstance(message, NotificationMessage):
                notifications.append(message)

        b.on_message = watch
        sim.run(until_us=seconds(2))
        assert a.state is BgpSessionState.IDLE
        assert downs == [f"open-rejected-{OPEN_ERR_BAD_PEER_AS}"]
        assert notifications
        assert notifications[0].error_subcode == OPEN_ERR_BAD_PEER_AS

    def test_validation_subcodes(self):
        sim = Simulator()
        net = Net(sim)
        a, _ = build_sessions(sim, net)
        ok = OpenMessage(my_as=65000, hold_time_s=180, bgp_id="1.1.1.1")
        assert a._validate_open(ok) is None
        bad_version = OpenMessage(
            my_as=65000, hold_time_s=180, bgp_id="1.1.1.1", version=3
        )
        assert a._validate_open(bad_version) == (2, OPEN_ERR_UNSUPPORTED_VERSION)
        bad_hold = OpenMessage(my_as=65000, hold_time_s=2, bgp_id="1.1.1.1")
        assert a._validate_open(bad_hold) == (
            2, OPEN_ERR_UNACCEPTABLE_HOLD_TIME,
        )
        zero_hold = OpenMessage(my_as=65000, hold_time_s=0, bgp_id="1.1.1.1")
        assert a._validate_open(zero_hold) is None

    def test_wide_as_peer_validates_against_true_as(self):
        sim = Simulator()
        net = Net(sim)
        client_ep, server_ep = connect_pair(sim, net.a, net.b, 40000, 179)
        a = BgpSession(
            sim, client_ep, local_as=4_200_000_001, bgp_id="10.0.0.1"
        )
        b = BgpSession(
            sim, server_ep, local_as=65000, bgp_id="10.0.0.2",
            expected_peer_as=4_200_000_001,
        )
        sim.run(until_us=seconds(2))
        assert b.state is BgpSessionState.ESTABLISHED
