"""Unit tests for pcap reading/writing and full-frame composition."""

import io
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.health import TraceHealth
from repro.wire import frames, tcpw
from repro.wire.pcap import (
    MAGIC_NS,
    PcapError,
    PcapReader,
    PcapRecord,
    PcapWriter,
    read_pcap,
    records_to_bytes,
    write_pcap,
)


def sample_records():
    return [
        PcapRecord(timestamp_us=1_000_000, data=b"frame-one"),
        PcapRecord(timestamp_us=1_000_250, data=b"frame-two-longer"),
        PcapRecord(timestamp_us=2_500_000, data=b"x" * 100),
    ]


class TestPcapRoundtrip:
    def test_roundtrip_memory(self):
        blob = records_to_bytes(sample_records())
        got = read_pcap(io.BytesIO(blob))
        assert [(r.timestamp_us, r.data) for r in got] == [
            (r.timestamp_us, r.data) for r in sample_records()
        ]

    def test_roundtrip_file(self, tmp_path):
        path = tmp_path / "trace.pcap"
        write_pcap(path, sample_records())
        got = read_pcap(path)
        assert len(got) == 3
        assert got[0].data == b"frame-one"

    def test_snaplen_truncation(self):
        buffer = io.BytesIO()
        write_pcap(buffer, [PcapRecord(0, b"y" * 200)], snaplen=64)
        buffer.seek(0)
        (record,) = read_pcap(buffer)
        assert record.captured_length == 64
        assert record.wire_length == 200

    def test_bad_magic(self):
        with pytest.raises(PcapError):
            read_pcap(io.BytesIO(b"\x00" * 24))

    def test_truncated_global_header(self):
        with pytest.raises(PcapError):
            read_pcap(io.BytesIO(b"\xd4\xc3\xb2\xa1"))

    def test_truncated_trailing_record_tolerated(self):
        blob = records_to_bytes(sample_records())
        got = read_pcap(io.BytesIO(blob[:-5]))
        assert len(got) == 2

    def test_truncated_record_header_tolerated(self):
        blob = records_to_bytes(sample_records()[:1])
        got = read_pcap(io.BytesIO(blob + b"\x01\x02"))
        assert len(got) == 1

    def test_big_endian_read(self):
        # Hand-build a big-endian pcap with one record.
        header = struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1)
        record = struct.pack(">IIII", 3, 500, 4, 4) + b"abcd"
        got = read_pcap(io.BytesIO(header + record))
        assert got == [PcapRecord(timestamp_us=3_000_500, data=b"abcd", original_length=4)]

    def test_unsupported_version(self):
        header = struct.pack("<IHHiIII", 0xA1B2C3D4, 1, 0, 0, 0, 65535, 1)
        with pytest.raises(PcapError):
            PcapReader(io.BytesIO(header))

    def test_reader_exposes_metadata(self):
        blob = records_to_bytes([])
        reader = PcapReader(io.BytesIO(blob))
        assert reader.linktype == 1
        assert reader.snaplen == 65535

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**40),
                st.binary(min_size=1, max_size=300),
            ),
            max_size=20,
        )
    )
    def test_roundtrip_property(self, items):
        records = [PcapRecord(ts, data) for ts, data in items]
        got = read_pcap(io.BytesIO(records_to_bytes(records)))
        assert [(r.timestamp_us, r.data) for r in got] == items


class TestNanosecondMagic:
    def test_roundtrip_nanosecond_file(self):
        blob = records_to_bytes(sample_records(), nanosecond=True)
        assert struct.unpack("<I", blob[:4])[0] == MAGIC_NS
        got = read_pcap(io.BytesIO(blob))
        assert [(r.timestamp_us, r.data) for r in got] == [
            (r.timestamp_us, r.data) for r in sample_records()
        ]

    def test_reader_flags_nanosecond(self):
        reader = PcapReader(io.BytesIO(records_to_bytes([], nanosecond=True)))
        assert reader.nanosecond
        assert not PcapReader(io.BytesIO(records_to_bytes([]))).nanosecond

    def test_hand_built_swapped_nanosecond(self):
        # Big-endian file with the nanosecond magic: ts_frac is in ns.
        header = struct.pack(">IHHiIII", MAGIC_NS, 2, 4, 0, 0, 65535, 1)
        record = struct.pack(">IIII", 3, 500_000_123, 4, 4) + b"abcd"
        (got,) = read_pcap(io.BytesIO(header + record))
        assert got.timestamp_us == 3_500_000  # sub-µs precision truncated
        assert got.data == b"abcd"

    @given(st.integers(min_value=0, max_value=2**40))
    def test_microsecond_precision_preserved(self, timestamp_us):
        blob = records_to_bytes(
            [PcapRecord(timestamp_us, b"x")], nanosecond=True
        )
        (got,) = read_pcap(io.BytesIO(blob))
        assert got.timestamp_us == timestamp_us


class TestPcapWriter:
    def test_snaplen_truncation_keeps_true_wire_length(self, tmp_path):
        path = tmp_path / "short.pcap"
        with PcapWriter(path, snaplen=32) as writer:
            writer.write(PcapRecord(0, b"q" * 90))
        (got,) = read_pcap(path)
        assert got.captured_length == 32
        assert got.wire_length == 90

    def test_wire_length_never_below_captured(self):
        # An inconsistent record (orig_len < captured bytes) is repaired
        # on write so readers never see orig_len < incl_len.
        buffer = io.BytesIO()
        with PcapWriter(buffer) as writer:
            writer.write(PcapRecord(0, b"z" * 100, original_length=50))
        buffer.seek(0)
        (got,) = read_pcap(buffer)
        assert got.wire_length == 100

    def test_context_manager_closes_on_error(self, tmp_path):
        path = tmp_path / "err.pcap"
        with pytest.raises(RuntimeError):
            with PcapWriter(path) as writer:
                writer.write(PcapRecord(0, b"partial"))
                raise RuntimeError("simulated failure mid-write")
        assert writer._stream.closed
        # What made it to disk before the error is a readable pcap.
        (got,) = read_pcap(path)
        assert got.data == b"partial"

    def test_close_is_idempotent(self, tmp_path):
        writer = PcapWriter(tmp_path / "idem.pcap")
        writer.close()
        writer.close()

    def test_borrowed_stream_left_open(self):
        buffer = io.BytesIO()
        with PcapWriter(buffer) as writer:
            writer.write(PcapRecord(0, b"a"))
        assert not buffer.closed


class TestTolerantReader:
    def damaged_blob(self):
        """Five records with the middle one's length field smashed."""
        records = [
            PcapRecord(timestamp_us=i * 1_000, data=bytes([i]) * 40)
            for i in range(5)
        ]
        blob = bytearray(records_to_bytes(records))
        offset = 24 + 2 * (16 + 40)  # third record's header
        struct.pack_into("<I", blob, offset + 8, 0xFFFFFFFF)
        return bytes(blob), records

    def test_bad_magic_yields_empty_plus_issue(self):
        health = TraceHealth()
        got = read_pcap(io.BytesIO(b"\x00" * 64), tolerant=True, health=health)
        assert got == []
        assert health.by_kind() == {"bad-magic": 1}

    def test_truncated_global_header_tolerated(self):
        health = TraceHealth()
        got = read_pcap(io.BytesIO(b"\xd4\xc3"), tolerant=True, health=health)
        assert got == []
        assert health.by_kind() == {"truncated-global-header": 1}

    def test_strict_still_raises(self):
        with pytest.raises(PcapError):
            read_pcap(io.BytesIO(b"\x00" * 64))

    def test_resync_skips_only_damaged_record(self):
        blob, records = self.damaged_blob()
        health = TraceHealth()
        got = read_pcap(io.BytesIO(blob), tolerant=True, health=health)
        assert [r.data for r in got] == [
            r.data for i, r in enumerate(records) if i != 2
        ]
        assert health.by_kind().get("bad-record-header") == 1
        assert health.records_read == 4

    def test_mid_file_truncation_recorded(self):
        blob = records_to_bytes(sample_records())
        health = TraceHealth()
        got = read_pcap(io.BytesIO(blob[:-5]), tolerant=True, health=health)
        assert len(got) == 2
        assert health.by_kind() == {"truncated-record": 1}

    def test_timestamp_regression_is_one_benign_issue(self):
        records = [
            PcapRecord(timestamp_us=5_000_000, data=b"a"),
            PcapRecord(timestamp_us=1_000_000, data=b"b"),
            PcapRecord(timestamp_us=500_000, data=b"c"),
        ]
        health = TraceHealth(strict=True)  # benign: must not raise
        got = read_pcap(
            io.BytesIO(records_to_bytes(records)), tolerant=True, health=health
        )
        assert len(got) == 3
        assert health.by_kind() == {"timestamp-regression": 1}

    def test_clean_file_tolerant_equals_strict(self):
        blob = records_to_bytes(sample_records())
        health = TraceHealth()
        tolerant = read_pcap(io.BytesIO(blob), tolerant=True, health=health)
        assert tolerant == read_pcap(io.BytesIO(blob))
        assert health.ok

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**40),
                st.binary(min_size=1, max_size=200),
            ),
            max_size=12,
        ),
        st.integers(min_value=0, max_value=10**9),
    )
    def test_truncation_never_raises_yields_prefix(self, items, cut_draw):
        """The satellite property: write → truncate anywhere → tolerant
        read never raises and yields a prefix of the original records."""
        records = [PcapRecord(ts, data) for ts, data in items]
        blob = records_to_bytes(records)
        cut = cut_draw % (len(blob) + 1)
        health = TraceHealth()
        got = read_pcap(io.BytesIO(blob[:cut]), tolerant=True, health=health)
        assert len(got) <= len(records)
        assert [(r.timestamp_us, r.data) for r in got] == [
            (r.timestamp_us, r.data) for r in records[: len(got)]
        ]
        if cut < len(blob):
            assert not health.ok or len(got) < len(records) or cut == 0


class TestTimestampContinuity:
    """The tolerant reader adjudicates corrupt timestamps by continuity.

    A record header whose *length* fields survive mangling still frames
    the stream correctly, so a smashed timestamp must cost exactly one
    record — it must neither trigger a resync nor poison the output
    with a time 28 years in the future (the old nanosecond-magic
    failure mode, where the ns frac bound admitted ~23% of random
    values that the microsecond bound rejected).
    """

    def steady_records(self, n=5, start=1_000_000, step=1_000):
        # Nonzero payload bytes: a zero-filled payload reads as a
        # plausible all-zero record header during resync, which would
        # add an unrelated artifact to what these tests measure.
        return [
            PcapRecord(timestamp_us=start + i * step, data=bytes([65 + i]) * 40)
            for i in range(n)
        ]

    def test_garbage_first_timestamp_settled_by_quorum(self):
        records = self.steady_records()
        records[0] = PcapRecord(timestamp_us=10**15, data=records[0].data)
        health = TraceHealth()
        got = read_pcap(
            io.BytesIO(records_to_bytes(records)), tolerant=True, health=health
        )
        assert [r.data for r in got] == [r.data for r in records[1:]]
        assert health.by_kind() == {"implausible-timestamp": 1}

    def test_garbage_middle_timestamp_dropped(self):
        records = self.steady_records()
        records[2] = PcapRecord(timestamp_us=10**15, data=records[2].data)
        health = TraceHealth()
        got = read_pcap(
            io.BytesIO(records_to_bytes(records)), tolerant=True, health=health
        )
        assert [r.data for r in got] == [
            r.data for i, r in enumerate(records) if i != 2
        ]
        assert health.by_kind() == {"implausible-timestamp": 1}
        # The issue accounts the whole record (header + payload).
        assert health.bytes_lost == 16 + 40

    def test_genuine_jump_reanchors_on_agreement(self):
        """A capture resumed years later: the far side re-anchors.

        The first post-jump record is the unavoidable casualty (one
        opinion cannot outvote the anchor); the moment a second record
        agrees with it, the reader re-anchors and keeps everything.
        """
        later = 2 * 366 * 86_400 * 1_000_000
        records = self.steady_records(3) + [
            PcapRecord(timestamp_us=later + i * 1_000, data=bytes([10 + i]) * 40)
            for i in range(3)
        ]
        health = TraceHealth()
        got = read_pcap(
            io.BytesIO(records_to_bytes(records)), tolerant=True, health=health
        )
        assert [r.data for r in got] == [
            r.data for i, r in enumerate(records) if i != 3
        ]
        assert health.by_kind() == {"implausible-timestamp": 1}

    def test_short_files_keep_everything(self):
        # One or two records: the jury never convenes, nothing is lost.
        for n in (1, 2):
            records = self.steady_records(n)
            health = TraceHealth()
            got = read_pcap(
                io.BytesIO(records_to_bytes(records)),
                tolerant=True, health=health,
            )
            assert len(got) == n
            assert health.ok

    def test_mangled_first_record_ns_behaves_like_us(self):
        """The regression this guards: ns and us magics must recover
        identically when the first record's timestamp fields are
        smashed.  The ns fractional bound (10**9) accepts mangled
        values the us bound (10**6) rejects, so before continuity
        adjudication the ns path emitted a garbage-timestamp record
        where the us path resynced past it."""
        records = self.steady_records()
        recovered = {}
        for nanosecond in (False, True):
            blob = bytearray(records_to_bytes(records, nanosecond=nanosecond))
            # ts_sec and ts_frac of the first record (offset 24..31):
            # garbage that the ns frac bound accepts.
            struct.pack_into("<II", blob, 24, 0x39ABCDEF, 0x30000000)
            health = TraceHealth()
            got = read_pcap(io.BytesIO(bytes(blob)), tolerant=True, health=health)
            assert not health.ok
            recovered[nanosecond] = [r.data for r in got]
            # Whatever survived must carry sane timestamps.
            for record in got:
                assert record.timestamp_us < 10**9
        assert recovered[False] == recovered[True]
        assert recovered[True] == [r.data for r in records[1:]]


class TestFrames:
    def make_tcp(self, **kw):
        defaults = dict(
            src_port=179, dst_port=40000, seq=1, ack=2,
            flags=tcpw.ACK, window=16384, payload=b"update",
        )
        defaults.update(kw)
        return tcpw.TcpHeader(**defaults)

    def test_build_and_parse(self):
        raw = frames.build_frame("10.1.1.1", "10.2.2.2", self.make_tcp())
        parsed = frames.parse_frame(raw, verify_checksums=True)
        assert parsed.src_ip == "10.1.1.1"
        assert parsed.dst_ip == "10.2.2.2"
        assert parsed.tcp.payload == b"update"
        assert parsed.flow == ("10.1.1.1", 179, "10.2.2.2", 40000)

    def test_frame_length_matches_model(self):
        from repro.netsim.packet import tcp_wire_length

        payload = b"z" * 1400
        raw = frames.build_frame("10.1.1.1", "10.2.2.2", self.make_tcp(payload=payload))
        assert len(raw) == tcp_wire_length(len(payload))

    def test_syn_frame_carries_options(self):
        header = self.make_tcp(flags=tcpw.SYN, payload=b"", mss_option=1460)
        raw = frames.build_frame("10.1.1.1", "10.2.2.2", header)
        parsed = frames.parse_frame(raw)
        assert parsed.tcp.mss_option == 1460

    def test_non_ip_frame_rejected(self):
        from repro.wire import ethernet

        raw = ethernet.EthernetFrame(
            b"\x02" * 6, b"\x02" * 6, 0x0806, b"arp"
        ).encode()
        with pytest.raises(frames.FrameError):
            frames.parse_frame(raw)

    def test_non_tcp_packet_rejected(self):
        from repro.wire import ethernet, ip

        udp_ip = ip.Ipv4Header(
            src="1.1.1.1", dst="2.2.2.2", payload=b"", protocol=17
        ).encode()
        raw = ethernet.EthernetFrame(
            b"\x02" * 6, b"\x02" * 6, 0x0800, udp_ip
        ).encode()
        with pytest.raises(frames.FrameError):
            frames.parse_frame(raw)

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=65535),
        st.binary(max_size=1460),
    )
    def test_tcp_fields_roundtrip_property(self, seq, ack, window, payload):
        header = self.make_tcp(seq=seq, ack=ack, window=window, payload=payload)
        raw = frames.build_frame("10.0.0.1", "10.0.0.2", header)
        parsed = frames.parse_frame(raw, verify_checksums=True)
        assert parsed.tcp.seq == seq
        assert parsed.tcp.ack == ack
        assert parsed.tcp.window == window
        assert parsed.tcp.payload == payload
