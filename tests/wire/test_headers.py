"""Unit tests for Ethernet, IPv4 and TCP codecs."""

import pytest

from repro.wire import ethernet, ip, tcpw


class TestEthernet:
    def test_roundtrip(self):
        frame = ethernet.EthernetFrame(
            dst_mac=b"\x02\x00\x0a\x00\x00\x02",
            src_mac=b"\x02\x00\x0a\x00\x00\x01",
            ethertype=ethernet.ETHERTYPE_IPV4,
            payload=b"hello",
        )
        decoded = ethernet.decode(frame.encode())
        assert decoded == frame

    def test_short_frame_rejected(self):
        with pytest.raises(ethernet.EthernetError):
            ethernet.decode(b"short")

    def test_bad_mac_rejected(self):
        frame = ethernet.EthernetFrame(b"\x02", b"\x02", 0x0800, b"")
        with pytest.raises(ethernet.EthernetError):
            frame.encode()

    def test_mac_from_ip_deterministic(self):
        assert ethernet.mac_from_ip("10.0.0.1") == ethernet.mac_from_ip("10.0.0.1")
        assert ethernet.mac_from_ip("10.0.0.1") != ethernet.mac_from_ip("10.0.0.2")

    def test_mac_from_bad_ip(self):
        with pytest.raises(ethernet.EthernetError):
            ethernet.mac_from_ip("300.0.0.1")


class TestIpv4:
    def test_roundtrip(self):
        header = ip.Ipv4Header(
            src="192.0.2.1", dst="198.51.100.7", payload=b"payload", ttl=63,
            identification=4242,
        )
        decoded = ip.decode(header.encode())
        assert decoded.src == "192.0.2.1"
        assert decoded.dst == "198.51.100.7"
        assert decoded.payload == b"payload"
        assert decoded.ttl == 63
        assert decoded.identification == 4242

    def test_checksum_verified(self):
        raw = bytearray(ip.Ipv4Header(src="1.2.3.4", dst="5.6.7.8", payload=b"").encode())
        raw[8] ^= 0xFF  # corrupt TTL
        with pytest.raises(ip.IpError):
            ip.decode(bytes(raw))
        # But tolerated when verification is off.
        decoded = ip.decode(bytes(raw), verify_checksum=False)
        assert decoded.src == "1.2.3.4"

    def test_total_length_guard(self):
        raw = ip.Ipv4Header(src="1.2.3.4", dst="5.6.7.8", payload=b"abcd").encode()
        with pytest.raises(ip.IpError):
            ip.decode(raw[:-1])  # truncated payload

    def test_extra_capture_bytes_trimmed(self):
        raw = ip.Ipv4Header(src="1.2.3.4", dst="5.6.7.8", payload=b"abcd").encode()
        decoded = ip.decode(raw + b"\x00\x00")  # ethernet padding
        assert decoded.payload == b"abcd"

    def test_not_ipv4(self):
        raw = bytearray(ip.Ipv4Header(src="1.2.3.4", dst="5.6.7.8", payload=b"").encode())
        raw[0] = 0x65  # version 6
        with pytest.raises(ip.IpError):
            ip.decode(bytes(raw), verify_checksum=False)

    def test_ip_string_conversion(self):
        assert ip.bytes_to_ip(ip.ip_to_bytes("203.0.113.9")) == "203.0.113.9"
        with pytest.raises(ip.IpError):
            ip.ip_to_bytes("1.2.3")
        with pytest.raises(ip.IpError):
            ip.ip_to_bytes("1.2.3.999")
        with pytest.raises(ip.IpError):
            ip.ip_to_bytes("a.b.c.d")

    def test_checksum_rfc1071(self):
        # Known vector: checksum of this data equals 0xddf2 (RFC 1071 example).
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert ip.checksum(data) == 0x220D

    def test_checksum_odd_length_zero_pads(self):
        # RFC 1071: odd-length data is padded with a zero byte on the
        # right, i.e. the final byte occupies the high half of the last
        # 16-bit word.
        assert ip.checksum(b"\xab") == 0xFFFF - 0xAB00
        assert ip.checksum(b"\x00\x01\xf2") == ip.checksum(b"\x00\x01\xf2\x00")

    def test_checksum_accepts_buffer_types(self):
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        for odd in (data, data + b"\xab"):
            expected = ip.checksum(odd)
            assert ip.checksum(bytearray(odd)) == expected
            assert ip.checksum(memoryview(odd)) == expected
            # Non-zero-offset view: must not fall back to the start of
            # the underlying buffer when padding.
            padded = b"\xff\xff" + odd
            assert ip.checksum(memoryview(padded)[2:]) == expected


class TestTcp:
    def make(self, **kw):
        defaults = dict(
            src_port=179, dst_port=52000, seq=1000, ack=2000,
            flags=tcpw.ACK | tcpw.PSH, window=65000, payload=b"bgpdata",
        )
        defaults.update(kw)
        return tcpw.TcpHeader(**defaults)

    def test_roundtrip(self):
        header = self.make()
        decoded = tcpw.decode(header.encode("10.0.0.1", "10.0.0.2"))
        assert decoded.src_port == 179
        assert decoded.dst_port == 52000
        assert decoded.seq == 1000
        assert decoded.ack == 2000
        assert decoded.window == 65000
        assert decoded.payload == b"bgpdata"
        assert decoded.is_ack and not decoded.is_syn

    def test_options_roundtrip(self):
        header = self.make(flags=tcpw.SYN, mss_option=1460, wscale_option=2, payload=b"")
        decoded = tcpw.decode(header.encode("10.0.0.1", "10.0.0.2"))
        assert decoded.mss_option == 1460
        assert decoded.wscale_option == 2
        assert decoded.is_syn

    def test_checksum_verification(self):
        raw = bytearray(self.make().encode("10.0.0.1", "10.0.0.2"))
        raw[4] ^= 0x01  # corrupt seq
        with pytest.raises(tcpw.TcpError):
            tcpw.decode(bytes(raw), "10.0.0.1", "10.0.0.2", verify_checksum=True)
        ok = self.make().encode("10.0.0.1", "10.0.0.2")
        decoded = tcpw.decode(ok, "10.0.0.1", "10.0.0.2", verify_checksum=True)
        assert decoded.payload == b"bgpdata"

    def test_checksum_requires_ips(self):
        raw = self.make().encode("10.0.0.1", "10.0.0.2")
        with pytest.raises(tcpw.TcpError):
            tcpw.decode(raw, verify_checksum=True)

    def test_short_segment_rejected(self):
        with pytest.raises(tcpw.TcpError):
            tcpw.decode(b"\x00" * 10)

    def test_bad_data_offset(self):
        raw = bytearray(self.make(payload=b"").encode("10.0.0.1", "10.0.0.2"))
        raw[12] = 0x20  # offset 8 words = 32 bytes > segment
        with pytest.raises(tcpw.TcpError):
            tcpw.decode(bytes(raw))

    def test_seq_wraps_modulo_2_32(self):
        header = self.make(seq=2**32 + 5)
        decoded = tcpw.decode(header.encode("10.0.0.1", "10.0.0.2"))
        assert decoded.seq == 5

    def test_flag_helpers(self):
        assert self.make(flags=tcpw.SYN | tcpw.ACK).is_syn
        assert self.make(flags=tcpw.FIN).is_fin
        assert self.make(flags=tcpw.RST).is_rst
