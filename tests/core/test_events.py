"""Unit tests for EventSeries and SeriesCatalog."""

import pytest

from repro.core.events import EventSeries, SeriesCatalog, SeriesEventData
from repro.core.timeranges import TimeRange, TimeRangeSet


class TestEventSeries:
    def test_construct_from_tuples(self):
        s = EventSeries("Loss", [(0, 10), (20, 30)])
        assert len(s) == 2
        assert s.size() == 20

    def test_construct_from_timerangeset(self):
        trs = TimeRangeSet([(0, 5)])
        s = EventSeries("X", trs)
        assert s.ranges is trs

    def test_delay_ratio(self):
        s = EventSeries("Loss", [(0, 25)])
        assert s.delay_ratio(100) == 0.25

    def test_delay_ratio_zero_period(self):
        assert EventSeries("X", [(0, 10)]).delay_ratio(0) == 0.0

    def test_packet_byte_counters(self):
        s = EventSeries(
            "Retx",
            [
                TimeRange(0, 10, SeriesEventData(packets=3, bytes=4500)),
                TimeRange(20, 30, SeriesEventData(packets=2, bytes=3000)),
            ],
        )
        assert s.total_packets() == 5
        assert s.total_bytes() == 7500

    def test_counters_survive_coalescing(self):
        s = EventSeries(
            "Retx",
            [
                TimeRange(0, 10, SeriesEventData(packets=1, bytes=100)),
                TimeRange(5, 15, SeriesEventData(packets=2, bytes=200)),
            ],
        )
        assert len(s) == 1
        assert s.total_packets() == 3
        assert s.total_bytes() == 300

    def test_renamed_is_interpretation_rule(self):
        upstream = EventSeries("UpstreamLoss", [(0, 10)])
        local = upstream.renamed("SendLocalLoss")
        assert local.name == "SendLocalLoss"
        assert local.ranges == upstream.ranges

    def test_intersection_rule(self):
        adv = EventSeries("AdvBndOut", [(0, 20)])
        small = EventSeries("SmallAdv", [(10, 30)])
        combined = adv.intersection(small, name="SmallAdvBndOut")
        assert combined.name == "SmallAdvBndOut"
        assert [(r.start, r.end) for r in combined] == [(10, 20)]

    def test_union_rule(self):
        a = EventSeries("A", [(0, 5)])
        b = EventSeries("B", [(10, 15)])
        assert a.union(b, name="AB").size() == 10

    def test_difference(self):
        a = EventSeries("A", [(0, 20)])
        b = EventSeries("B", [(5, 10)])
        assert a.difference(b).size() == 15

    def test_complement(self):
        a = EventSeries("Transmission", [(10, 20)])
        gaps = a.complement((0, 30), name="Gaps")
        assert gaps.size() == 20

    def test_clip(self):
        a = EventSeries("A", [(0, 100)])
        assert a.clip(10, 30).size() == 20

    def test_merge_event_data(self):
        merged = SeriesEventData(packets=1, bytes=10, refs=[1]).merge(
            SeriesEventData(packets=2, bytes=20, refs=[2])
        )
        assert merged.packets == 3
        assert merged.bytes == 30
        assert merged.refs == [1, 2]


class TestSeriesCatalog:
    def test_put_get(self):
        cat = SeriesCatalog()
        s = EventSeries("Outstanding", [(0, 10)])
        cat.put(s)
        assert cat.get("Outstanding") is s
        assert "Outstanding" in cat

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            SeriesCatalog().get("nope")

    def test_get_or_empty(self):
        cat = SeriesCatalog()
        empty = cat.get_or_empty("ZeroWindow")
        assert empty.size() == 0
        assert "ZeroWindow" not in cat

    def test_iteration_and_names(self):
        cat = SeriesCatalog()
        cat.put(EventSeries("A"))
        cat.put(EventSeries("B"))
        assert cat.names() == ["A", "B"]
        assert len(cat) == 2
        assert [s.name for s in cat] == ["A", "B"]

    def test_replace(self):
        cat = SeriesCatalog()
        cat.put(EventSeries("A", [(0, 1)]))
        cat.put(EventSeries("A", [(0, 2)]))
        assert cat.get("A").size() == 2
        assert len(cat) == 1
