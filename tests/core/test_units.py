"""Unit tests for time unit helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import units


def test_seconds():
    assert units.seconds(1.5) == 1_500_000


def test_milliseconds():
    assert units.milliseconds(200) == 200_000


def test_microseconds_rounds():
    assert units.microseconds(1.6) == 2


def test_to_seconds_roundtrip():
    assert units.to_seconds(units.seconds(2.25)) == 2.25


def test_to_milliseconds():
    assert units.to_milliseconds(1500) == 1.5


def test_pcap_timestamp_split():
    assert units.pcap_timestamp(2_500_000) == (2, 500_000)


def test_from_pcap_timestamp():
    assert units.from_pcap_timestamp(2, 500_000) == 2_500_000


@given(st.integers(min_value=0, max_value=10**15))
def test_pcap_timestamp_roundtrip(us):
    sec, usec = units.pcap_timestamp(us)
    assert 0 <= usec < units.US_PER_SECOND
    assert units.from_pcap_timestamp(sec, usec) == us
