"""Unit tests for TimeRange and TimeRangeSet."""

import pytest

from repro.core.timeranges import TimeRange, TimeRangeSet


class TestTimeRange:
    def test_duration(self):
        assert TimeRange(10, 25).duration == 15

    def test_empty_range_allowed(self):
        assert TimeRange(5, 5).is_empty()

    def test_reversed_range_rejected(self):
        with pytest.raises(ValueError):
            TimeRange(10, 5)

    def test_contains_half_open(self):
        rng = TimeRange(10, 20)
        assert rng.contains(10)
        assert rng.contains(19)
        assert not rng.contains(20)
        assert not rng.contains(9)

    def test_overlaps(self):
        assert TimeRange(0, 10).overlaps(TimeRange(5, 15))
        assert not TimeRange(0, 10).overlaps(TimeRange(10, 15))

    def test_touches_includes_adjacency(self):
        assert TimeRange(0, 10).touches(TimeRange(10, 15))
        assert not TimeRange(0, 10).touches(TimeRange(11, 15))

    def test_intersect(self):
        out = TimeRange(0, 10).intersect(TimeRange(5, 20))
        assert out == TimeRange(5, 10)

    def test_intersect_disjoint_is_none(self):
        assert TimeRange(0, 5).intersect(TimeRange(5, 10)) is None

    def test_intersect_keeps_left_data(self):
        left = TimeRange(0, 10, data="left")
        right = TimeRange(5, 20, data="right")
        assert left.intersect(right).data == "left"

    def test_shift(self):
        assert TimeRange(5, 10).shift(100) == TimeRange(105, 110)

    def test_equality_ignores_data(self):
        assert TimeRange(0, 5, data="a") == TimeRange(0, 5, data="b")

    def test_ordering_by_extent(self):
        assert TimeRange(0, 5) < TimeRange(0, 6) < TimeRange(1, 2)


class TestTimeRangeSetBasics:
    def test_empty(self):
        s = TimeRangeSet()
        assert len(s) == 0
        assert s.size() == 0
        assert not s
        assert s.span() is None

    def test_add_tuple_coercion(self):
        s = TimeRangeSet([(0, 10), (20, 30)])
        assert len(s) == 2
        assert s.size() == 20

    def test_empty_ranges_dropped(self):
        s = TimeRangeSet([(5, 5)])
        assert len(s) == 0

    def test_coalesce_overlapping(self):
        s = TimeRangeSet([(0, 10), (5, 15)])
        assert list(s) == [TimeRange(0, 15)]

    def test_coalesce_adjacent(self):
        s = TimeRangeSet([(0, 10), (10, 20)])
        assert list(s) == [TimeRange(0, 20)]

    def test_disjoint_preserved_sorted(self):
        s = TimeRangeSet([(20, 30), (0, 10)])
        assert [(r.start, r.end) for r in s] == [(0, 10), (20, 30)]

    def test_insert_bridging_many(self):
        s = TimeRangeSet([(0, 5), (10, 15), (20, 25)])
        s.add_span(4, 21)
        assert list(s) == [TimeRange(0, 25)]

    def test_coalesce_merges_data(self):
        s = TimeRangeSet()
        s.add_span(0, 10, data="a")
        s.add_span(5, 15, data="b")
        (rng,) = s.ranges
        assert sorted(rng.data) == ["a", "b"]

    def test_span(self):
        s = TimeRangeSet([(5, 10), (50, 60)])
        assert s.span() == TimeRange(5, 60)

    def test_contains_and_range_at(self):
        s = TimeRangeSet([(0, 10), (20, 30)])
        assert s.contains(0)
        assert not s.contains(15)
        assert s.range_at(25) == TimeRange(20, 30)
        assert s.range_at(10) is None

    def test_overlapping_query(self):
        s = TimeRangeSet([(0, 10), (20, 30), (40, 50)])
        hits = s.overlapping(5, 45)
        assert [(r.start, r.end) for r in hits] == [(0, 10), (20, 30), (40, 50)]

    def test_durations(self):
        s = TimeRangeSet([(0, 5), (10, 30)])
        assert s.durations() == [5, 20]

    def test_gaps(self):
        s = TimeRangeSet([(0, 5), (10, 15), (30, 35)])
        gaps = s.gaps()
        assert [(r.start, r.end) for r in gaps] == [(5, 10), (15, 30)]

    def test_remove_span_splits(self):
        s = TimeRangeSet([(0, 30)])
        s.remove_span(10, 20)
        assert [(r.start, r.end) for r in s] == [(0, 10), (20, 30)]

    def test_remove_span_noop_on_empty_interval(self):
        s = TimeRangeSet([(0, 30)])
        s.remove_span(20, 10)
        assert s.size() == 30


class TestTimeRangeSetAlgebra:
    def test_union(self):
        a = TimeRangeSet([(0, 10), (20, 30)])
        b = TimeRangeSet([(5, 25), (40, 50)])
        u = a.union(b)
        assert [(r.start, r.end) for r in u] == [(0, 30), (40, 50)]

    def test_union_multiple(self):
        a = TimeRangeSet([(0, 5)])
        b = TimeRangeSet([(5, 10)])
        c = TimeRangeSet([(10, 15)])
        assert a.union(b, c).ranges == TimeRangeSet([(0, 15)]).ranges

    def test_intersection(self):
        a = TimeRangeSet([(0, 10), (20, 30)])
        b = TimeRangeSet([(5, 25)])
        i = a.intersection(b)
        assert [(r.start, r.end) for r in i] == [(5, 10), (20, 25)]

    def test_intersection_empty(self):
        a = TimeRangeSet([(0, 10)])
        b = TimeRangeSet([(10, 20)])
        assert a.intersection(b).size() == 0

    def test_difference(self):
        a = TimeRangeSet([(0, 30)])
        b = TimeRangeSet([(5, 10), (20, 40)])
        d = a.difference(b)
        assert [(r.start, r.end) for r in d] == [(0, 5), (10, 20)]

    def test_difference_subtrahend_before(self):
        a = TimeRangeSet([(10, 20)])
        b = TimeRangeSet([(0, 5)])
        assert a.difference(b) == a

    def test_complement(self):
        a = TimeRangeSet([(5, 10), (20, 25)])
        comp = a.complement((0, 30))
        assert [(r.start, r.end) for r in comp] == [(0, 5), (10, 20), (25, 30)]

    def test_clip(self):
        a = TimeRangeSet([(0, 10), (20, 30)])
        clipped = a.clip(5, 25)
        assert [(r.start, r.end) for r in clipped] == [(5, 10), (20, 25)]

    def test_shift(self):
        a = TimeRangeSet([(0, 10)])
        assert list(a.shift(5)) == [TimeRange(5, 15)]

    def test_equality(self):
        assert TimeRangeSet([(0, 5), (5, 10)]) == TimeRangeSet([(0, 10)])
        assert TimeRangeSet([(0, 5)]) != TimeRangeSet([(0, 6)])
