"""The TraceHealth per-kind issue cap: bounded storage, honest totals."""

import pytest

from repro.core.health import (
    DEFAULT_MAX_ISSUES_PER_KIND,
    STAGE_PCAP,
    IngestError,
    TraceHealth,
)


def _flood(health, kind, count, bytes_lost=0, benign=True):
    for i in range(count):
        health.record(
            STAGE_PCAP, kind, offset=i, bytes_lost=bytes_lost, benign=benign
        )


class TestPerKindCap:
    def test_default_cap_is_generous_but_finite(self):
        assert TraceHealth().max_issues_per_kind == DEFAULT_MAX_ISSUES_PER_KIND

    def test_overflow_stores_one_marker_and_counts_the_rest(self):
        health = TraceHealth(max_issues_per_kind=5)
        _flood(health, "truncated-record", 12)
        stored = [
            i for i in health.issues if i.kind == "truncated-record"
        ]
        assert len(stored) == 5
        markers = [i for i in health.issues if i.kind == "issues-truncated"]
        assert len(markers) == 1
        assert "truncated-record" in markers[0].detail
        assert health.suppressed == {"truncated-record": 7}
        # The rollup still reports every occurrence.
        assert health.by_kind()["truncated-record"] == 12

    def test_suppressed_bytes_still_accounted(self):
        health = TraceHealth(max_issues_per_kind=2)
        _flood(health, "truncated-record", 6, bytes_lost=10)
        assert health.bytes_lost == 60

    def test_summary_reports_suppression(self):
        health = TraceHealth(max_issues_per_kind=2)
        _flood(health, "truncated-record", 6)
        text = health.summary()
        # 2 stored + 1 truncation marker + 4 suppressed = 7 total.
        assert "7 issue(s)" in text
        assert "suppressed past per-kind cap" in text

    def test_marker_inherits_the_trigger_benign_flag(self):
        health = TraceHealth(max_issues_per_kind=1)
        _flood(health, "truncated-record", 3, benign=False)
        (marker,) = [
            i for i in health.issues if i.kind == "issues-truncated"
        ]
        assert not marker.benign
        assert not health.ok

    def test_none_disables_the_cap(self):
        health = TraceHealth(max_issues_per_kind=None)
        _flood(health, "truncated-record", 50)
        assert len(health.issues) == 50
        assert health.suppressed == {}

    def test_cap_is_per_kind_not_global(self):
        health = TraceHealth(max_issues_per_kind=3)
        _flood(health, "truncated-record", 3)
        _flood(health, "bad-marker", 3)
        assert len(health.issues) == 6
        assert health.suppressed == {}

    def test_strict_mode_raises_before_the_cap(self):
        health = TraceHealth(strict=True, max_issues_per_kind=1)
        with pytest.raises(IngestError):
            health.record(STAGE_PCAP, "truncated-record", benign=False)

    def test_merge_folds_suppression_without_recapping(self):
        left = TraceHealth(max_issues_per_kind=5)
        right = TraceHealth(max_issues_per_kind=5)
        _flood(left, "truncated-record", 4)
        _flood(right, "truncated-record", 8, bytes_lost=2)
        left.merge(right)
        # Merge keeps everything the other ledger stored (5 of 8)
        # plus its suppressed tally; nothing is re-capped.
        assert health_kind_total(left, "truncated-record") == 12
        assert left.suppressed["truncated-record"] == 3
        assert left.suppressed_bytes_lost == 6

    def test_to_dict_exposes_suppressed(self):
        health = TraceHealth(max_issues_per_kind=1)
        _flood(health, "truncated-record", 3)
        payload = health.to_dict()
        assert payload["suppressed"] == {"truncated-record": 2}


def health_kind_total(health, kind):
    return health.by_kind()[kind]
