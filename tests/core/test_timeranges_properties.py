"""Property-based tests for TimeRangeSet set-algebra laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timeranges import TimeRange, TimeRangeSet

# Keep coordinates small so overlaps are common.
spans = st.tuples(
    st.integers(min_value=0, max_value=200),
    st.integers(min_value=0, max_value=200),
).map(lambda t: (min(t), max(t)))

range_sets = st.lists(spans, max_size=12).map(TimeRangeSet)


def covered(s: TimeRangeSet) -> set[int]:
    """Brute-force set of covered integer microsecond ticks."""
    ticks: set[int] = set()
    for rng in s:
        ticks.update(range(rng.start, rng.end))
    return ticks


@given(range_sets)
def test_invariants_sorted_coalesced_nonempty(s):
    prev_end = None
    for rng in s:
        assert rng.duration > 0
        if prev_end is not None:
            # Strictly separated: touching ranges must have coalesced.
            assert rng.start > prev_end
        prev_end = rng.end


@given(range_sets)
def test_size_matches_covered_ticks(s):
    assert s.size() == len(covered(s))


@given(range_sets, range_sets)
def test_union_semantics(a, b):
    assert covered(a.union(b)) == covered(a) | covered(b)


@given(range_sets, range_sets)
def test_intersection_semantics(a, b):
    assert covered(a.intersection(b)) == covered(a) & covered(b)


@given(range_sets, range_sets)
def test_difference_semantics(a, b):
    assert covered(a.difference(b)) == covered(a) - covered(b)


@given(range_sets, range_sets)
def test_union_commutative(a, b):
    assert a.union(b) == b.union(a)


@given(range_sets, range_sets)
def test_intersection_commutative(a, b):
    assert a.intersection(b) == b.intersection(a)


@given(range_sets, range_sets, range_sets)
@settings(max_examples=50)
def test_distributivity(a, b, c):
    left = a.intersection(b.union(c))
    right = a.intersection(b).union(a.intersection(c))
    assert left == right


@given(range_sets)
def test_complement_partitions_window(s):
    window = (0, 250)
    comp = s.complement(window)
    clipped = s.clip(*window)
    assert comp.intersection(clipped).size() == 0
    assert comp.size() + clipped.size() == 250


@given(range_sets, st.integers(min_value=-100, max_value=100))
def test_shift_preserves_size_and_count(s, offset):
    shifted = s.shift(offset)
    assert shifted.size() == s.size()
    assert len(shifted) == len(s)


@given(range_sets)
def test_gaps_complement_relationship(s):
    span = s.span()
    if span is None:
        return
    assert s.gaps() == s.complement((span.start, span.end))


@given(range_sets, range_sets)
def test_de_morgan(a, b):
    window = (0, 250)
    lhs = a.union(b).complement(window)
    rhs = a.complement(window).intersection(b.complement(window))
    assert lhs == rhs


@given(st.lists(spans, max_size=12))
def test_insertion_order_irrelevant(items):
    forward = TimeRangeSet(items)
    backward = TimeRangeSet(reversed(items))
    assert forward == backward


@given(range_sets, spans)
def test_remove_then_query(s, span):
    start, end = span
    s.remove_span(start, end)
    for rng in s:
        assert rng.end <= start or rng.start >= end or start == end
