"""The gate on the repo itself: src/repro lints clean, the committed
baseline is canonical, and every inline exemption carries a reason."""

from __future__ import annotations

from pathlib import Path

from repro.lint import render_baseline, run_lint
from repro.lint.baseline import DEFAULT_BASELINE_NAME, load_baseline
from repro.lint.engine import all_findings, find_suppressions
from repro.lint.project import Project

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"


def run_selflint():
    project = Project.load(REPO_ROOT, [SRC])
    baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE_NAME)
    return project, run_lint(project, baseline_keys=baseline.keys())


class TestSelfLint:
    def test_src_repro_has_no_new_findings(self):
        _, result = run_selflint()
        assert result.findings == [], "\n".join(
            f.render() for f in result.findings
        )

    def test_committed_baseline_is_byte_stable(self):
        # Regenerating the baseline from the current findings must
        # reproduce the committed file byte for byte — the property
        # that makes `--write-baseline` diffs trustworthy.
        _, result = run_selflint()
        committed = (REPO_ROOT / DEFAULT_BASELINE_NAME).read_text(
            encoding="utf-8"
        )
        assert render_baseline(all_findings(result)) == committed

    def test_no_stale_baseline_entries(self):
        _, result = run_selflint()
        assert result.stale_baseline == []

    def test_every_suppression_names_a_reason(self):
        # `# repro: noqa[...]` without a justification is indistinguishable
        # from a silencing reflex; the repo's own exemptions must say why.
        project, _ = run_selflint()
        unexplained = [
            f"{s.path}:{s.line}"
            for source in project.files
            for s in find_suppressions(source)
            if not s.reason.strip()
        ]
        assert unexplained == []

    def test_the_intentional_exemptions_are_exactly_the_known_ones(self):
        # Keeps the exemption surface explicit: growing it means
        # editing this list alongside the new noqa comment.
        project, result = run_selflint()
        suppressed = sorted(
            {(f.path, f.rule) for f in result.suppressed}
        )
        assert suppressed == [
            ("src/repro/analysis/tdat.py", "RL001"),
            ("src/repro/netsim/simulator.py", "RL001"),
        ]
