"""Engine mechanics: suppressions, RL000, baselines, determinism."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    RULES,
    Finding,
    load_baseline,
    render_baseline,
    run_lint,
)
from repro.lint.baseline import BaselineError, write_baseline
from repro.lint.engine import UNUSED_SUPPRESSION_ID, find_suppressions
from repro.lint.project import Project, ProjectError


def make_project(tmp_path: Path, files: dict[str, str]) -> Project:
    for relpath, text in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return Project.load(tmp_path, [tmp_path])


SET_LOOP = """\
    def render(items):
        return [str(item) for item in set(items)]
"""

SET_LOOP_SUPPRESSED = """\
    def render(items):
        return [str(item) for item in set(items)]  # repro: noqa[RL002] order irrelevant here
"""


class TestSuppressions:
    def test_noqa_on_the_finding_line_silences_it(self, tmp_path):
        project = make_project(tmp_path, {"mod.py": SET_LOOP_SUPPRESSED})
        result = run_lint(project, select=["RL002"])
        assert result.findings == []
        assert len(result.suppressed) == 1
        assert result.suppressed[0].rule == "RL002"

    def test_unsuppressed_twin_reports(self, tmp_path):
        project = make_project(tmp_path, {"mod.py": SET_LOOP})
        result = run_lint(project, select=["RL002"])
        assert [f.rule for f in result.findings] == ["RL002"]

    def test_unused_suppression_becomes_rl000(self, tmp_path):
        project = make_project(
            tmp_path,
            {"mod.py": "x = 1  # repro: noqa[RL002] nothing to silence\n"},
        )
        result = run_lint(project)
        assert [f.rule for f in result.findings] == [UNUSED_SUPPRESSION_ID]
        assert "RL002" in result.findings[0].message

    def test_noqa_names_only_the_listed_rules(self, tmp_path):
        # An RL001 noqa does not silence an RL002 finding on its line.
        project = make_project(
            tmp_path,
            {
                "mod.py": (
                    "def render(items):\n"
                    "    return [str(i) for i in set(items)]"
                    "  # repro: noqa[RL001] wrong rule\n"
                )
            },
        )
        result = run_lint(project, select=["RL002"])
        rules = sorted(f.rule for f in result.findings)
        assert rules == [UNUSED_SUPPRESSION_ID, "RL002"]

    def test_one_comment_may_name_several_rules(self, tmp_path):
        project = make_project(
            tmp_path,
            {
                "mod.py": (
                    "def render(items):\n"
                    "    return [str(i) for i in set(items)]"
                    "  # repro: noqa[RL001, RL002] both named\n"
                )
            },
        )
        result = run_lint(project, select=["RL002"])
        # RL002 silenced; the RL001 half silenced nothing -> RL000.
        assert [f.rule for f in result.findings] == [UNUSED_SUPPRESSION_ID]
        assert len(result.suppressed) == 1

    def test_docstring_mention_of_the_syntax_is_not_a_suppression(
        self, tmp_path
    ):
        project = make_project(
            tmp_path,
            {
                "mod.py": (
                    '"""Suppress with `# repro: noqa[RL002]` inline."""\n'
                    "x = 1\n"
                )
            },
        )
        source = project.files[0]
        assert find_suppressions(source) == []
        result = run_lint(project)
        assert result.findings == []

    def test_suppression_reason_is_captured(self, tmp_path):
        project = make_project(tmp_path, {"mod.py": SET_LOOP_SUPPRESSED})
        (suppression,) = find_suppressions(project.files[0])
        assert suppression.rules == ("RL002",)
        assert suppression.reason == "order irrelevant here"


class TestBaseline:
    def test_baselined_findings_do_not_fail_the_run(self, tmp_path):
        project = make_project(tmp_path, {"mod.py": SET_LOOP})
        first = run_lint(project, select=["RL002"])
        keys = {f.baseline_key() for f in first.findings}
        second = run_lint(project, select=["RL002"], baseline_keys=keys)
        assert second.findings == []
        assert len(second.baselined) == 1
        assert second.clean

    def test_baseline_matching_ignores_line_drift(self, tmp_path):
        project = make_project(tmp_path, {"mod.py": SET_LOOP})
        first = run_lint(project, select=["RL002"])
        keys = {f.baseline_key() for f in first.findings}
        shifted = make_project(
            tmp_path / "v2", {"mod.py": "\n\n\n" + SET_LOOP}
        )
        result = run_lint(shifted, select=["RL002"], baseline_keys=keys)
        assert result.findings == []
        assert len(result.baselined) == 1

    def test_stale_entries_are_reported_not_silently_kept(self, tmp_path):
        project = make_project(tmp_path, {"mod.py": "x = 1\n"})
        result = run_lint(
            project,
            baseline_keys={("RL002", "gone.py", "was fixed long ago")},
        )
        assert result.findings == []
        assert result.stale_baseline == [
            ("RL002", "gone.py", "was fixed long ago")
        ]

    def test_round_trip_is_byte_stable(self, tmp_path):
        findings = [
            Finding("RL002", "error", "b.py", 9, 0, "zzz"),
            Finding("RL002", "error", "a.py", 3, 4, "mmm"),
            Finding("RL001", "error", "a.py", 3, 0, "aaa"),
        ]
        rendered = render_baseline(findings)
        assert rendered == render_baseline(list(reversed(findings)))
        assert rendered.endswith("\n")
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        loaded = load_baseline(path)
        assert loaded.keys() == {f.baseline_key() for f in findings}
        write_baseline(path, findings)
        assert path.read_text() == rendered

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": []}')
        with pytest.raises(BaselineError):
            load_baseline(path)
        path.write_text("not json")
        with pytest.raises(BaselineError):
            load_baseline(path)


class TestEngine:
    def test_registry_has_the_eleven_rules(self):
        assert sorted(RULES) == [
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
            "RL007", "RL008", "RL009", "RL010", "RL011",
        ]
        for rule in RULES.values():
            assert rule.id and rule.summary and rule.severity

    def test_select_unknown_rule_raises(self, tmp_path):
        project = make_project(tmp_path, {"mod.py": "x = 1\n"})
        with pytest.raises(KeyError):
            run_lint(project, select=["RL999"])

    def test_findings_sort_deterministically(self, tmp_path):
        project = make_project(
            tmp_path,
            {"b.py": SET_LOOP, "a.py": SET_LOOP},
        )
        result = run_lint(project, select=["RL002"])
        assert [f.path for f in result.findings] == ["a.py", "b.py"]

    def test_syntax_error_is_a_project_error(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        with pytest.raises(ProjectError):
            Project.load(tmp_path, [tmp_path])

    def test_finding_render_format(self):
        finding = Finding("RL002", "error", "a.py", 3, 4, "msg")
        assert finding.render() == "a.py:3:4: RL002 [error] msg"
