"""Per-rule fixture tests: known-bad trees report exactly the seeded
violations (rule id, file, line); known-good twins stay clean."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.project import Project

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(case: str, select: list[str] | None = None):
    root = FIXTURES / case
    project = Project.load(root, [root])
    return run_lint(project, select=select)


def locations(result) -> list[tuple[str, str, int]]:
    return [(f.rule, f.path, f.line) for f in result.findings]


@pytest.mark.parametrize(
    "rule",
    [
        "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007",
        "RL008", "RL009", "RL010", "RL011",
    ],
)
def test_good_twin_is_clean_under_every_rule(rule):
    result = lint_fixture(f"{rule.lower()}/good")
    assert result.findings == [], [f.render() for f in result.findings]


class TestRL001:
    def test_direct_and_callgraph_reachable_sinks(self):
        result = lint_fixture("rl001/bad", select=["RL001"])
        assert locations(result) == [
            ("RL001", "repro/netsim/sim.py", 7),
            ("RL001", "repro/util.py", 5),
        ]

    def test_indirect_finding_carries_a_witness_path(self):
        result = lint_fixture("rl001/bad", select=["RL001"])
        indirect = [f for f in result.findings if f.path == "repro/util.py"]
        assert len(indirect) == 1
        assert (
            "via repro.netsim.sim.run -> repro.util.jitter"
            in indirect[0].message
        )
        assert "random.random" in indirect[0].message

    def test_seeded_rng_outside_helper_is_not_flagged(self):
        # The good twin uses random.Random(seed): seeded construction
        # is the repo's own idiom and must stay silent.
        result = lint_fixture("rl001/good", select=["RL001"])
        assert result.findings == []


class TestRL002:
    def test_comprehension_and_order_exposing_call(self):
        result = lint_fixture("rl002/bad", select=["RL002"])
        assert locations(result) == [
            ("RL002", "repro/analysis/out.py", 3),
            ("RL002", "repro/analysis/out.py", 4),
        ]

    def test_wall_domain_package_is_exempt(self):
        # rl002/good iterates a set inside repro/exec — the
        # supervision layer is wall-domain by contract.
        result = lint_fixture("rl002/good", select=["RL002"])
        assert result.findings == []


class TestRL003:
    def test_lambda_nested_def_and_nested_result_class(self):
        result = lint_fixture("rl003/bad", select=["RL003"])
        assert locations(result) == [
            ("RL003", "repro/workloads/runner.py", 2),
            ("RL003", "repro/workloads/runner.py", 12),
            ("RL003", "repro/workloads/runner.py", 13),
        ]
        by_line = {f.line: f.message for f in result.findings}
        assert "class 'Result'" in by_line[2]
        assert "nested functions" in by_line[12]
        assert "lambda" in by_line[13]

    def test_top_level_task_is_fine(self):
        result = lint_fixture("rl003/good", select=["RL003"])
        assert result.findings == []


class TestRL004:
    def test_unregistered_use_and_stale_registry_entry(self):
        result = lint_fixture("rl004/bad", select=["RL004"])
        assert locations(result) == [
            ("RL004", "repro/core/health.py", 3),
            ("RL004", "repro/wire/reader.py", 3),
        ]
        by_path = {f.path: f.message for f in result.findings}
        assert "'stale-kind'" in by_path["repro/core/health.py"]
        assert "'unknown-kind'" in by_path["repro/wire/reader.py"]

    def test_conduits_and_mappings_count_as_uses(self):
        # The good twin records one kind directly, one through a
        # `_give_up(kind, ...)` conduit, one via a *_ISSUE_KINDS
        # mapping literal — all three must register as used.
        result = lint_fixture("rl004/good", select=["RL004"])
        assert result.findings == []


class TestRL005:
    def test_undocumented_constant_and_phantom_table_row(self):
        result = lint_fixture("rl005/bad", select=["RL005"])
        assert locations(result) == [
            ("RL005", "repro/tools/tdat_cli.py", 2),
            ("RL005", "repro/tools/tdat_cli.py", 4),
        ]
        by_line = {f.line: f.message for f in result.findings}
        assert "EXIT_WEIRD = 7" in by_line[2]
        assert "exit code 9" in by_line[4]

    def test_matching_table_is_clean(self):
        result = lint_fixture("rl005/good", select=["RL005"])
        assert result.findings == []


class TestRL006:
    def test_uncataloged_name_and_unmatched_dynamic_prefix(self):
        result = lint_fixture("rl006/bad", select=["RL006"])
        assert locations(result) == [
            ("RL006", "repro/wire/w.py", 2),
            ("RL006", "repro/wire/w.py", 3),
        ]
        by_line = {f.line: f.message for f in result.findings}
        assert "'unknown.metric'" in by_line[2]
        assert "prefix 'dyn.'" in by_line[3]

    def test_catalog_covers_static_names_and_prefixes(self):
        result = lint_fixture("rl006/good", select=["RL006"])
        assert result.findings == []

    def test_stale_serve_catalog_row_is_flagged(self):
        # Reverse direction: a cataloged serve.* name no code records
        # is a stale row, anchored at the service module.
        result = lint_fixture("rl006-serve/bad", select=["RL006"])
        assert locations(result) == [
            ("RL006", "repro/serve/http.py", 1),
        ]
        assert "'serve.stale_gauge'" in result.findings[0].message
        assert "never recorded" in result.findings[0].message

    def test_serve_reverse_direction_tolerates_prose_and_prefixes(self):
        # The good twin catalogs a `serve.*` glob (prose), a name
        # covered by a recorded dynamic prefix, and a stale row in a
        # legacy namespace — none of which the reverse check flags.
        result = lint_fixture("rl006-serve/good")
        assert result.findings == [], [
            f.render() for f in result.findings
        ]


class TestRL007:
    def test_unregistered_stale_and_uncataloged_points(self):
        result = lint_fixture("rl007/bad", select=["RL007"])
        assert locations(result) == [
            ("RL007", "repro/chaos/plan.py", 6),
            ("RL007", "repro/chaos/plan.py", 7),
            ("RL007", "repro/workloads/checkpoint.py", 1),
        ]
        by_line = {
            (f.path, f.line): f.message for f in result.findings
        }
        # A registered point missing from the robustness catalog.
        assert "'journal.fsync'" in by_line[("repro/chaos/plan.py", 6)]
        assert "not cataloged" in by_line[("repro/chaos/plan.py", 6)]
        # A registry entry no POINT_* constant backs.
        assert "'stale.point'" in by_line[("repro/chaos/plan.py", 7)]
        assert "stale" in by_line[("repro/chaos/plan.py", 7)]
        # A seam constant naming an unregistered point.
        assert (
            "'rogue.point'"
            in by_line[("repro/workloads/checkpoint.py", 1)]
        )

    def test_registry_constants_and_catalog_in_sync(self):
        result = lint_fixture("rl007/good", select=["RL007"])
        assert result.findings == []


class TestRL008:
    def test_direct_and_reachable_blocking_calls(self):
        result = lint_fixture("rl008/bad", select=["RL008"])
        assert locations(result) == [
            ("RL008", "repro/serve/h.py", 5),
            ("RL008", "repro/serve/h.py", 13),
        ]

    def test_indirect_finding_names_its_witness_path(self):
        # The sleep lives in a sync helper; the finding must explain
        # how async code reaches it, RL001-style.
        result = lint_fixture("rl008/bad", select=["RL008"])
        indirect = [f for f in result.findings if f.line == 5]
        assert len(indirect) == 1
        assert (
            "via repro.serve.h.handle -> repro.serve.h.pump"
            in indirect[0].message
        )
        assert "time.sleep" in indirect[0].message

    def test_executor_boundary_and_awaits_are_sanctioned(self):
        # The good twin runs the same blocking pump through
        # run_in_executor and awaits an asyncio event: both are the
        # sanctioned ways for async code to wait.
        result = lint_fixture("rl008/good", select=["RL008"])
        assert result.findings == []


class TestRL009:
    def test_unguarded_read_and_write_are_flagged(self):
        result = lint_fixture("rl009/bad", select=["RL009"])
        assert locations(result) == [
            ("RL009", "repro/serve/s.py", 14),
            ("RL009", "repro/serve/s.py", 17),
        ]
        by_line = {f.line: f.message for f in result.findings}
        assert "reads self.state" in by_line[14]
        assert "writes self.state" in by_line[17]

    def test_finding_names_the_declaration_site(self):
        result = lint_fixture("rl009/bad", select=["RL009"])
        assert (
            "declared guarded-by at repro/serve/s.py:7"
            in result.findings[0].message
        )
        assert "without acquiring self.lock" in result.findings[0].message

    def test_with_timed_acquire_and_unannotated_stay_clean(self):
        # The good twin reads under `with self.lock`, under a timed
        # acquire/release pair, and from a class with no guarded-by
        # annotations at all — none of which is a finding.
        result = lint_fixture("rl009/good", select=["RL009"])
        assert result.findings == []


class TestRL010:
    def test_leak_happy_path_close_and_discard(self):
        result = lint_fixture("rl010/bad", select=["RL010"])
        assert locations(result) == [
            ("RL010", "repro/exec/r.py", 2),
            ("RL010", "repro/exec/r.py", 7),
            ("RL010", "repro/exec/r.py", 14),
        ]
        by_line = {f.line: f.message for f in result.findings}
        assert "never released on any path" in by_line[2]
        assert "released only on the happy path" in by_line[7]
        assert "discarded without being released" in by_line[14]

    def test_with_finally_handoff_and_escape_are_managed(self):
        # with-managed, closed in finally, adopted by a registry, or
        # returned to the caller: ownership is accounted for.
        result = lint_fixture("rl010/good", select=["RL010"])
        assert result.findings == []


class TestRL011:
    def test_inversion_reports_both_witness_chains(self):
        result = lint_fixture("rl011/bad", select=["RL011"])
        assert locations(result) == [
            ("RL011", "repro/serve/locks.py", 9),
        ]
        message = result.findings[0].message
        assert "potential deadlock" in message
        assert (
            "repro.serve.locks.forward acquires repro.serve.locks.LOCK_B "
            "while holding repro.serve.locks.LOCK_A" in message
        )
        assert (
            "repro.serve.locks.backward acquires repro.serve.locks.LOCK_A "
            "while holding repro.serve.locks.LOCK_B" in message
        )

    def test_consistent_order_through_a_helper_is_clean(self):
        # The good twin always takes A before B, once through a helper
        # call (the acquires-closure edge) — a consistent order is not
        # a cycle.
        result = lint_fixture("rl011/good", select=["RL011"])
        assert result.findings == []
