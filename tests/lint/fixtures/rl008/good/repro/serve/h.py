import asyncio
import time


def pump() -> None:
    time.sleep(0.5)


async def handle() -> None:
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, pump)


async def waiter(event) -> None:
    await event.wait()
