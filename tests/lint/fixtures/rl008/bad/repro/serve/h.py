import time


def pump() -> None:
    time.sleep(0.5)


async def handle() -> None:
    pump()


async def direct() -> None:
    time.sleep(0.1)
