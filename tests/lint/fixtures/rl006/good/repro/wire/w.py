def run(obs, tracer, key):
    obs.metrics.counter("known.metric").inc()
    obs.metrics.counter(f"dyn.{key}").inc()
    with tracer.span("known.span"):
        pass
