def run(obs, key):
    obs.metrics.counter("unknown.metric").inc()
    obs.metrics.counter(f"dyn.{key}").inc()
