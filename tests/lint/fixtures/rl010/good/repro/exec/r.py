def fine(path):
    with open(path, "rb") as handle:
        return handle.read()


def finally_closed(path):
    handle = open(path, "rb")
    try:
        return handle.read()
    finally:
        handle.close()


def handed_off(path, registry):
    handle = open(path, "rb")
    registry.adopt(handle)


def escaping(path):
    return open(path, "rb")
