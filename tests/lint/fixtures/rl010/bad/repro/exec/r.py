def leak(path):
    handle = open(path, "rb")
    return handle.read()


def happy_only(path):
    handle = open(path, "rb")
    data = handle.read()
    handle.close()
    return data


def discarded(path):
    open(path, "rb")
