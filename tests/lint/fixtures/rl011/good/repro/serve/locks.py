import threading

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()


def helper() -> None:
    with LOCK_B:
        pass


def consistent() -> None:
    with LOCK_A:
        helper()


def also_consistent() -> None:
    with LOCK_A:
        with LOCK_B:
            pass
