import threading

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()


def forward() -> None:
    with LOCK_A:
        with LOCK_B:
            pass


def backward() -> None:
    with LOCK_B:
        with LOCK_A:
            pass
