EXIT_OK = 0
EXIT_ERROR = 2

EXIT_CODE_TABLE = """\
exit codes:
  0  success
  2  error\
"""
