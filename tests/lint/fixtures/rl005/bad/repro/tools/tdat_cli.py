EXIT_OK = 0
EXIT_WEIRD = 7

EXIT_CODE_TABLE = """\
exit codes:
  0  success
  9  documented but returned by nothing\
"""
