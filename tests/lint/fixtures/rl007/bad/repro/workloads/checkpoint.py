POINT_ROGUE = "rogue.point"
