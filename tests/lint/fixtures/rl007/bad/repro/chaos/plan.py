POINT_APPEND = "journal.append"
POINT_FSYNC = "journal.fsync"

INJECTION_POINTS = {
    "journal.append": "torn or failed journal append",
    "journal.fsync": "journal fsync failure",
    "stale.point": "registered but backed by no seam constant",
}
