POINT_JOURNAL_APPEND = "journal.append"
