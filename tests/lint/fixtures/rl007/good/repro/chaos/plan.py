POINT_RETRY_STORM = "pool.retry-storm"

INJECTION_POINTS = {
    "journal.append": "torn or failed journal append",
    "pool.retry-storm": "transient failures across many episodes",
}
