def handle(obs, sid):
    obs.metrics.counter("serve.requests").inc()
    obs.metrics.gauge("serve.active_sessions").set(1)
    obs.metrics.counter(f"serve.session.{sid}").inc()
