def handle(obs):
    obs.metrics.counter("serve.requests").inc()
