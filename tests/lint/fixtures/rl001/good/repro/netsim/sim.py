import random


def step(seed):
    rng = random.Random(seed)
    return rng.random()
