import time

from repro.util import jitter


def step():
    return time.time()


def run():
    return jitter()
