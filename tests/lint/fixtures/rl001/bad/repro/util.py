import random


def jitter():
    return random.random()
