def render(items):
    seen = set(items)
    if 3 in seen:
        return sorted(seen)
    return len(seen)
