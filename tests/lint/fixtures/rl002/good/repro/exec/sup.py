def drain(pending):
    for worker in set(pending):
        worker.stop()
