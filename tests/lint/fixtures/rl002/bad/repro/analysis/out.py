def render(items):
    seen = set(items)
    lines = [str(item) for item in seen]
    return lines + list({1, 2})
