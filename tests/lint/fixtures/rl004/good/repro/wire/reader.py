_FALLBACK_ISSUE_KINDS = {
    "SomeError": "mapped-kind",
}


def _give_up(kind, detail):
    HEALTH.record("pcap", kind, detail=detail)


def read(health):
    health.record("pcap", "known-kind")
    _give_up("relayed-kind", "gave up")
