ISSUE_KINDS = {
    "known-kind": "recorded directly",
    "relayed-kind": "recorded through a conduit",
    "mapped-kind": "recorded via a *_ISSUE_KINDS mapping",
}
