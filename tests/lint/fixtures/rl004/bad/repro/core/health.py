ISSUE_KINDS = {
    "known-kind": "a kind the reader records",
    "stale-kind": "registered but never recorded",
}
