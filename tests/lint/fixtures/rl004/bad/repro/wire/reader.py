def read(health):
    health.record("pcap", "known-kind")
    health.record("pcap", "unknown-kind")
