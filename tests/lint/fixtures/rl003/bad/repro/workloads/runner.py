def task_with_class(item):
    class Result:
        value = 0

    return Result()


def run(pool, items):
    def nested_task(item):
        return item

    pool.map(nested_task, items)
    pool.map(lambda item: item, items)
    pool.map(task_with_class, items)
