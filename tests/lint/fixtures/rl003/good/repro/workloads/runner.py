def task(item):
    return item


def run(pool, items):
    return pool.map(task, items)
