import threading


class Session:
    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.state = "open"  # guarded-by: lock

    def ok(self) -> str:
        with self.lock:
            return self.state

    def racy_read(self) -> str:
        return self.state

    def racy_write(self) -> None:
        self.state = "done"
