import threading


class Session:
    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.state = "open"  # guarded-by: lock

    def ok(self) -> str:
        with self.lock:
            return self.state

    def advance(self) -> None:
        with self.lock:
            self.state = "done"

    def drain(self) -> str:
        self.lock.acquire(timeout=1.0)
        try:
            return self.state
        finally:
            self.lock.release()


class Unannotated:
    def __init__(self) -> None:
        self.state = "open"

    def read(self) -> str:
        return self.state
