"""The lint command line: exit codes, JSON shape, tdat integration."""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.cli import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    main,
)
from repro.tools import tdat_cli

FIXTURES = Path(__file__).parent / "fixtures"
GOOD = FIXTURES / "rl003" / "good"
BAD = FIXTURES / "rl003" / "bad"


def lint(*argv: str) -> int:
    return main(list(argv))


class TestExitCodes:
    def test_clean_tree_exits_zero(self, capsys):
        assert lint("--root", str(GOOD), str(GOOD)) == EXIT_CLEAN
        assert capsys.readouterr().out == ""

    def test_findings_exit_one(self, capsys):
        assert lint("--root", str(BAD), str(BAD)) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "RL003" in out
        assert "repro/workloads/runner.py" in out

    def test_bad_root_exits_two(self, capsys):
        assert lint("--root", str(BAD / "nope"), str(BAD)) == EXIT_USAGE
        assert "error" in capsys.readouterr().err

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def f(:\n")
        assert lint("--root", str(tmp_path), str(tmp_path)) == EXIT_USAGE
        assert "error" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, capsys):
        code = lint("--root", str(GOOD), "--select", "RL999", str(GOOD))
        assert code == EXIT_USAGE

    def test_corrupt_baseline_exits_two(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("not json")
        code = lint(
            "--root", str(BAD), "--baseline", str(baseline), str(BAD)
        )
        assert code == EXIT_USAGE


class TestJsonOutput:
    def test_shape_and_content(self, capsys):
        assert lint("--root", str(BAD), "--json", str(BAD)) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["files"] > 0
        assert payload["root"] == str(BAD)
        rules = {f["rule"] for f in payload["findings"]}
        assert rules == {"RL003"}
        finding = payload["findings"][0]
        assert set(finding) >= {
            "rule", "severity", "path", "line", "col", "message",
        }

    def test_clean_json(self, capsys):
        assert lint("--root", str(GOOD), "--json", str(GOOD)) == EXIT_CLEAN
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["findings"] == []


class TestSarifOutput:
    def test_document_shape_and_findings(self, capsys):
        code = lint("--root", str(BAD), "--format", "sarif", str(BAD))
        assert code == EXIT_FINDINGS
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        (run,) = document["runs"]
        assert run["tool"]["driver"]["name"] == "repro.lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "RL003" in rule_ids  # full catalog, not just firing rules
        assert "RL011" in rule_ids
        results = run["results"]
        assert {r["ruleId"] for r in results} == {"RL003"}
        location = results[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == (
            "repro/workloads/runner.py"
        )
        # SARIF columns are 1-based; the text format's are ast's 0-based.
        assert location["region"]["startColumn"] >= 1

    def test_clean_tree_still_emits_a_valid_document(self, capsys):
        code = lint("--root", str(GOOD), "--format", "sarif", str(GOOD))
        assert code == EXIT_CLEAN
        document = json.loads(capsys.readouterr().out)
        assert document["runs"][0]["results"] == []

    def test_sarif_bytes_are_deterministic(self, capsys):
        lint("--root", str(BAD), "--format", "sarif", str(BAD))
        first = capsys.readouterr().out
        lint("--root", str(BAD), "--format", "sarif", str(BAD))
        assert capsys.readouterr().out == first

    def test_format_json_is_the_json_flag(self, capsys):
        lint("--root", str(BAD), "--format", "json", str(BAD))
        via_format = capsys.readouterr().out
        lint("--root", str(BAD), "--json", str(BAD))
        assert capsys.readouterr().out == via_format


class TestParallelLoad:
    def test_jobs_4_is_byte_identical_to_jobs_1(self, capsys):
        # The satellite contract: findings come back in deterministic
        # path-then-line order whatever the worker count.
        src = Path(__file__).resolve().parents[2] / "src" / "repro" / "lint"
        root = src.parents[1]
        code_serial = lint("--root", str(root), "--jobs", "1", str(src))
        serial = capsys.readouterr()
        code_parallel = lint("--root", str(root), "--jobs", "4", str(src))
        parallel = capsys.readouterr()
        assert code_parallel == code_serial
        assert parallel.out == serial.out

    def test_jobs_parse_errors_still_exit_two(self, tmp_path, capsys):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "broken.py").write_text("def f(:\n")
        code = lint(
            "--root", str(tmp_path), "--jobs", "2", str(tmp_path)
        )
        assert code == EXIT_USAGE
        assert "error" in capsys.readouterr().err


class TestBaselineWorkflow:
    def test_write_then_gate(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        code = lint(
            "--root", str(BAD), "--baseline", str(baseline),
            "--write-baseline", str(BAD),
        )
        assert code == EXIT_CLEAN
        assert json.loads(baseline.read_text())["findings"]
        capsys.readouterr()
        code = lint(
            "--root", str(BAD), "--baseline", str(baseline), str(BAD)
        )
        assert code == EXIT_CLEAN
        assert "3 baselined" in capsys.readouterr().err


class TestListRules:
    def test_prints_the_catalog(self, capsys):
        assert lint("--list-rules") == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
            assert rule in out


class TestTdatIntegration:
    def test_tdat_lint_clean(self, capsys):
        code = tdat_cli.main(["lint", "--root", str(GOOD), str(GOOD)])
        assert code == EXIT_CLEAN

    def test_tdat_lint_findings(self, capsys):
        code = tdat_cli.main(["lint", "--root", str(BAD), str(BAD)])
        assert code == EXIT_FINDINGS
        assert "RL003" in capsys.readouterr().out

    def test_tdat_lint_json(self, capsys):
        code = tdat_cli.main(["lint", "--root", str(BAD), "--json", str(BAD)])
        assert code == EXIT_FINDINGS
        assert json.loads(capsys.readouterr().out)["clean"] is False

    def test_lint_is_a_documented_subcommand(self):
        assert "lint" in tdat_cli.SUBCOMMANDS
