"""The differential chaos verifier: outcomes, matrix algebra, and the
ISSUE acceptance sweep (100 seeds, every fault class defined and
recoverable)."""

import json

import pytest

from repro.chaos.plan import FAULT_CLASSES, draw_plan
from repro.chaos.runner import (
    OUTCOME_IDENTICAL,
    OUTCOME_TYPED,
    OUTCOME_UNDEFINED,
    OUTCOME_VIOLATION,
    ChaosCase,
    ChaosReport,
    main,
    run_chaos,
    run_plan,
)

TRANSFERS = 2  # the smallest legal plan; keeps the sweep fast


def _case(fault_class, outcome, seed=0):
    return ChaosCase(
        seed=seed, fault_class=fault_class,
        outcome=outcome, description="synthetic",
    )


class TestMatrixAlgebra:
    def test_cell_is_the_worst_outcome_of_its_class(self):
        report = ChaosReport(cases=[
            _case(FAULT_CLASSES[0], OUTCOME_IDENTICAL, seed=0),
            _case(FAULT_CLASSES[0], OUTCOME_TYPED, seed=10),
            _case(FAULT_CLASSES[1], OUTCOME_TYPED, seed=1),
            _case(FAULT_CLASSES[1], OUTCOME_VIOLATION, seed=11),
        ])
        matrix = report.matrix()
        assert matrix[FAULT_CLASSES[0]] == OUTCOME_TYPED
        assert matrix[FAULT_CLASSES[1]] == OUTCOME_VIOLATION
        assert not report.ok

    def test_unexercised_class_is_undefined_and_fails_the_report(self):
        report = ChaosReport(
            cases=[_case(FAULT_CLASSES[0], OUTCOME_IDENTICAL)]
        )
        matrix = report.matrix()
        assert matrix[FAULT_CLASSES[1]] == OUTCOME_UNDEFINED
        assert not report.ok  # no violations, but coverage is short

    def test_full_green_matrix_is_ok(self):
        report = ChaosReport(cases=[
            _case(fault_class, OUTCOME_IDENTICAL, seed=i)
            for i, fault_class in enumerate(FAULT_CLASSES)
        ])
        assert report.ok
        assert report.violations == []
        assert "chaos: OK" in report.summary()


class TestRunPlan:
    def test_fs_fault_is_typed_and_resumes_byte_identical(self):
        # Seed 0 is journal.append: the campaign must surface a typed
        # interruption (or simulated crash) and resume cleanly.
        case = run_plan(draw_plan(0, tasks=TRANSFERS), transfers=TRANSFERS)
        assert case.outcome == OUTCOME_TYPED, case.detail
        assert "resumed byte-identical" in case.detail

    def test_worker_crash_is_absorbed_byte_identical(self):
        # Seed 5 is pool.worker-crash: retries absorb it completely.
        case = run_plan(draw_plan(5, tasks=TRANSFERS), transfers=TRANSFERS)
        assert case.outcome == OUTCOME_IDENTICAL, case.detail


class TestAcceptanceSweep:
    def test_100_seed_sweep_has_no_undefined_or_violation_cells(self):
        # The ISSUE acceptance criterion: every fault class exercised,
        # every cell byte-identical or typed-recoverable, zero silent
        # divergence.
        report = run_chaos(seeds=100, transfers=TRANSFERS)
        assert len(report.cases) == 100
        matrix = report.matrix()
        for fault_class in FAULT_CLASSES:
            assert matrix[fault_class] in (
                OUTCOME_IDENTICAL, OUTCOME_TYPED
            ), (fault_class, matrix[fault_class], report.summary())
        assert report.violations == []
        assert report.ok
        # 100 seeds round-robined over the 11 classes: 9 or 10 plans
        # per class.
        for fault_class, cell in report.counts().items():
            assert sum(cell.values()) in (9, 10), fault_class


class TestCli:
    def test_sweep_too_short_to_cover_every_class_exits_nonzero(
        self, capsys
    ):
        assert main(["--seeds", "2", "--transfers", "2"]) == 1
        out = capsys.readouterr().out
        assert "undefined" in out
        assert "chaos: FAILED" in out

    def test_json_and_matrix_out(self, tmp_path, capsys):
        matrix_path = tmp_path / "matrix.json"
        code = main([
            "--seeds", str(len(FAULT_CLASSES)), "--transfers", "2",
            "--json", "--matrix-out", str(matrix_path),
        ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert len(report["cases"]) == len(FAULT_CLASSES)
        written = json.loads(matrix_path.read_text())
        assert set(written["matrix"]) == set(FAULT_CLASSES)
        assert all(
            cell in ("byte-identical", "typed-recoverable")
            for cell in written["matrix"].values()
        )
