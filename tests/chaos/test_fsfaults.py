"""FaultyCheckpointFs: fires exactly once, exactly on schedule."""

import errno

import pytest

from repro.chaos.fsfaults import FaultyCheckpointFs, SimulatedCrash
from repro.chaos.plan import FS_CRASH, FS_EIO, FS_ENOSPC, FS_TORN, FsFault
from repro.workloads.checkpoint import (
    POINT_CHECKPOINT_RENAME,
    POINT_JOURNAL_APPEND,
    POINT_JOURNAL_FSYNC,
)


def _write(fs, path, data, point=POINT_JOURNAL_APPEND):
    with open(path, "wb") as handle:
        fs.write(handle, data, point)


class TestScheduling:
    def test_fires_on_the_scheduled_call_and_only_there(self, tmp_path):
        fs = FaultyCheckpointFs(
            FsFault(point=POINT_JOURNAL_APPEND, mode=FS_EIO, at_call=3)
        )
        target = tmp_path / "out"
        _write(fs, target, b"one")
        _write(fs, target, b"two")
        with pytest.raises(OSError) as err:
            _write(fs, target, b"three")
        assert err.value.errno == errno.EIO
        assert fs.injected
        assert fs.calls[POINT_JOURNAL_APPEND] == 3

    def test_one_shot_the_resume_path_runs_clean(self, tmp_path):
        fs = FaultyCheckpointFs(
            FsFault(point=POINT_JOURNAL_APPEND, mode=FS_ENOSPC, at_call=1)
        )
        target = tmp_path / "out"
        with pytest.raises(OSError) as err:
            _write(fs, target, b"boom")
        assert err.value.errno == errno.ENOSPC
        # The same instance, left installed, must not fire again.
        _write(fs, target, b"after")
        assert target.read_bytes() == b"after"
        assert fs.calls[POINT_JOURNAL_APPEND] == 2

    def test_other_points_pass_through_but_are_counted(self, tmp_path):
        fs = FaultyCheckpointFs(
            FsFault(point=POINT_JOURNAL_FSYNC, mode=FS_EIO, at_call=1)
        )
        target = tmp_path / "out"
        _write(fs, target, b"data")  # journal.append: not the armed point
        assert target.read_bytes() == b"data"
        assert not fs.injected
        assert fs.calls == {POINT_JOURNAL_APPEND: 1}


class TestModes:
    def test_torn_write_keeps_a_strict_nonempty_prefix(self, tmp_path):
        for fraction in (0.0, 0.4, 1.0):
            fs = FaultyCheckpointFs(
                FsFault(
                    point=POINT_JOURNAL_APPEND, mode=FS_TORN,
                    at_call=1, fraction=fraction,
                )
            )
            target = tmp_path / f"torn-{fraction}"
            data = b"0123456789"
            with pytest.raises(SimulatedCrash):
                _write(fs, target, data)
            kept = target.read_bytes()
            # Genuinely torn: at least one byte written, at least one
            # lost, and what survives is a prefix of the payload.
            assert 1 <= len(kept) <= len(data) - 1
            assert data.startswith(kept)

    def test_fsync_failure_modes(self, tmp_path):
        for mode, expected in ((FS_EIO, errno.EIO), (FS_ENOSPC, errno.ENOSPC)):
            fs = FaultyCheckpointFs(
                FsFault(point=POINT_JOURNAL_FSYNC, mode=mode, at_call=1)
            )
            with open(tmp_path / f"f-{mode}", "wb") as handle:
                handle.write(b"data")
                with pytest.raises(OSError) as err:
                    fs.fsync(handle, POINT_JOURNAL_FSYNC)
                assert err.value.errno == expected

    def test_crash_at_rename_leaves_the_destination_untouched(
        self, tmp_path
    ):
        fs = FaultyCheckpointFs(
            FsFault(
                point=POINT_CHECKPOINT_RENAME, mode=FS_CRASH, at_call=1
            )
        )
        src = tmp_path / "src.tmp"
        dst = tmp_path / "dst"
        src.write_bytes(b"new")
        dst.write_bytes(b"old")
        with pytest.raises(SimulatedCrash):
            fs.replace(src, dst, POINT_CHECKPOINT_RENAME)
        assert dst.read_bytes() == b"old"
        assert src.read_bytes() == b"new"

    def test_simulated_crash_is_not_an_ordinary_exception(self):
        # Nothing in the pipeline catches BaseException broadly, so a
        # simulated crash unwinds like a process kill would.
        assert issubclass(SimulatedCrash, BaseException)
        assert not issubclass(SimulatedCrash, Exception)
