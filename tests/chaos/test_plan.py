"""Chaos plans: seeded, deterministic, covering every fault class."""

import pytest

from repro.chaos.plan import (
    FAULT_CLASSES,
    INJECTION_POINTS,
    POINT_DRAIN,
    ChaosHooks,
    draw_plan,
)


class TestDrawPlan:
    def test_same_seed_compiles_to_the_same_schedule(self):
        for seed in range(30):
            assert draw_plan(seed) == draw_plan(seed)

    def test_any_contiguous_window_covers_every_fault_class(self):
        for base in (0, 7, 1000):
            window = {
                draw_plan(base + i).fault_class
                for i in range(len(FAULT_CLASSES))
            }
            assert window == set(FAULT_CLASSES)

    def test_fault_classes_are_exactly_the_registered_points(self):
        assert FAULT_CLASSES == tuple(INJECTION_POINTS)

    def test_plans_target_only_existing_episodes(self):
        tasks = 4
        for seed in range(40):
            plan = draw_plan(seed, tasks=tasks)
            if plan.fs_fault is not None:
                # Journal appends: one per episode.  Checkpoint writes:
                # the two manifest copies plus one pcap per episode.
                assert 1 <= plan.fs_fault.at_call <= tasks + 2
            for index, attempt, _fault in plan.pool_faults:
                assert 0 <= index < tasks
                assert attempt == 0
            for episode in plan.storm_episodes:
                assert 0 <= episode < tasks
            if plan.fault_class == POINT_DRAIN:
                # Draining after the last episode would be a no-op
                # plan; the schedule always leaves work undone.
                assert 1 <= plan.drain_after < tasks

    def test_fewer_than_two_episodes_refused(self):
        with pytest.raises(ValueError, match="at least 2"):
            draw_plan(0, tasks=1)

    def test_parallel_iff_the_fault_needs_real_workers(self):
        for seed in range(20):
            plan = draw_plan(seed)
            needs_pool = bool(
                plan.pool_faults or plan.storm_episodes
                or plan.drain_after is not None
            )
            assert plan.parallel == needs_pool

    def test_describe_names_the_seed_and_class(self):
        plan = draw_plan(17)
        assert f"seed {plan.seed}" in plan.describe()
        assert plan.fault_class in plan.describe()


class TestChaosHooks:
    def test_fault_for_matches_index_and_attempt(self):
        fault = draw_plan(5).pool_faults[0][2]
        hooks = ChaosHooks(faults=((2, 0, fault),))
        assert hooks.fault_for(2, 0) is fault
        assert hooks.fault_for(2, 1) is None
        assert hooks.fault_for(1, 0) is None

    def test_hooks_survive_pickling(self):
        # The schedule ships to workers inside the pool's task payload.
        import pickle

        hooks = ChaosHooks(faults=((0, 0, draw_plan(5).pool_faults[0][2]),))
        assert pickle.loads(pickle.dumps(hooks)) == hooks
