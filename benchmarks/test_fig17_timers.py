"""Figure 17 — inferring BGP timers from the gap distribution.

Paper: the sorted sender-idle gap lengths of a timer-driven transfer
show a knee at the timer value; detected timers cluster at a few
specific values (80/100/200/400 ms), with ISP_A on 100-400ms and RV on
80/400ms.  The inferred values must land near the injected ground
truth.
"""

from collections import Counter

from repro.workloads.campaign import KNOWN_TIMERS_MS


def build_figure(campaigns):
    lines = [f"{'trace':14s} {'true(ms)':>9s} {'inferred(ms)':>13s} {'err%':>6s}"]
    inferred = {name: [] for name in campaigns}
    errors = []
    for name, result in campaigns.items():
        for record in result.records:
            if record.true_timer_us is None or not record.timer.detected:
                continue
            true_ms = record.true_timer_us / 1000
            got_ms = record.timer.timer_us / 1000
            err = abs(got_ms - true_ms) / true_ms * 100
            errors.append(err)
            inferred[name].append(round(got_ms))
            lines.append(
                f"{name:14s} {true_ms:9.0f} {got_ms:13.1f} {err:6.1f}"
            )
    lines.append("")
    for name, values in inferred.items():
        counts = Counter(
            min(KNOWN_TIMERS_MS, key=lambda t: abs(t - v)) for v in values
        )
        lines.append(f"{name:14s} timers detected: {dict(sorted(counts.items()))}")
    return "\n".join(lines), (inferred, errors)


def test_fig17(campaigns, artifact_writer, benchmark):
    text, (inferred, errors) = benchmark(build_figure, campaigns)
    artifact_writer("fig17_timers", text)
    print("\n" + text)
    detected_total = sum(len(v) for v in inferred.values())
    assert detected_total >= 3, "too few timer transfers detected"
    # Inferred timers land near ground truth (median error < 15%).
    errors.sort()
    assert errors[len(errors) // 2] < 15.0
    # Every inferred value sits near one of the paper's known timers —
    # or a small multiple of one ("one timer could be the multiple of
    # the other", paper section IV-B).
    candidates = [t * m for t in KNOWN_TIMERS_MS for m in (1, 2, 3)]
    for values in inferred.values():
        for value in values:
            nearest = min(candidates, key=lambda t: abs(t - value))
            assert abs(value - nearest) / nearest < 0.3
