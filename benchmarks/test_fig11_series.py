"""Figure 11 — an example TCP trace rendered as event series.

Paper: a piece of packet trace and its derived series (transmission
time, upstream loss, sender-app-limited, window-bounded outstanding)
drawn as binary square curves.  Regenerated with BGPlot on a transfer
mixing loss with application pacing.
"""

import random

from repro.analysis.tdat import analyze_pcap
from repro.bgp.sender_models import TimerBatchSender
from repro.bgp.table import generate_table
from repro.core.units import seconds
from repro.netsim.link import BernoulliLoss
from repro.netsim.random import RandomStreams
from repro.netsim.simulator import Simulator
from repro.tools.bgplot import render_panel, series_to_csv
from repro.workloads.scenarios import MonitoringSetup, RouterParams

PANEL_SERIES = [
    "Transmission",
    "UpstreamLoss",
    "DownstreamLoss",
    "SendAppLimited",
    "CwdBndOut",
    "AdvBndOut",
]


def run_scenario():
    sim = Simulator()
    streams = RandomStreams(111)
    setup = MonitoringSetup(sim)
    table = generate_table(60_000, random.Random(11))
    setup.add_router(
        RouterParams(
            name="r1",
            ip="10.11.0.1",
            table=table,
            sender_model=TimerBatchSender(sim, 150_000, 40),
            upstream_loss=BernoulliLoss(0.03, streams.stream("loss")),
        )
    )
    setup.start()
    sim.run(until_us=seconds(300))
    return setup.sniffer.sorted_records()


def build_figure(records):
    report = analyze_pcap(records, min_data_packets=2)
    analysis = next(iter(report))
    panel = render_panel(analysis.series, names=PANEL_SERIES, width=100)
    csv = series_to_csv(analysis.series, names=PANEL_SERIES)
    return panel + "\n\n" + csv, analysis


def test_fig11(artifact_writer, benchmark):
    records = run_scenario()
    text, analysis = benchmark(build_figure, records)
    artifact_writer("fig11_series", text)
    print("\n" + "\n".join(text.splitlines()[:9]))
    catalog = analysis.series.catalog
    # The example exhibits both behaviours the paper's figure shows:
    # inter-transmission gaps dominated by the sender application...
    assert catalog.get("SendAppLimited").size() > 0
    # ...and retransmission periods from packet loss.
    assert catalog.get("UpstreamLoss").size() > 0
    # Transmission itself is a tiny fraction of the transfer period.
    window = analysis.series.window.duration
    assert catalog.get("Transmission").clip(
        analysis.series.window.start, analysis.series.window.end
    ).size() < 0.1 * window
