"""Shared fixtures for the benchmark harness.

The expensive simulations (three campaigns, the peer-group episodes and
the concurrency sweep) run once per session; each benchmark then times
only its aggregation step and writes the regenerated table/figure to
``benchmarks/out/<id>.txt`` so results can be inspected and diffed
against the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.workloads.campaign import (
    isp_quagga_config,
    isp_vendor_config,
    routeviews_config,
    run_campaign,
    run_concurrency_sweep,
    run_peer_group_episode,
)

OUT_DIR = Path(__file__).parent / "out"

# Scaled-down campaign sizes (the paper analyzed 10396/436/94 transfers
# over months; per-transfer mechanics here are faithful, populations
# are not).
CAMPAIGN_SIZES = {"ISP_A-Vendor": 24, "ISP_A-Quagga": 18, "RV": 14}


@pytest.fixture(scope="session")
def campaigns():
    """The three campaigns of the paper's Table I, simulated."""
    return {
        "ISP_A-Vendor": run_campaign(
            isp_vendor_config(transfers=CAMPAIGN_SIZES["ISP_A-Vendor"])
        ),
        "ISP_A-Quagga": run_campaign(
            isp_quagga_config(transfers=CAMPAIGN_SIZES["ISP_A-Quagga"])
        ),
        "RV": run_campaign(
            routeviews_config(transfers=CAMPAIGN_SIZES["RV"])
        ),
    }


@pytest.fixture(scope="session")
def peer_group_episodes():
    """Three peer-group failures with ISP_A / RV style hold times."""
    return {
        "ISP_A-Vendor": run_peer_group_episode(
            seed=101, hold_time_s=90, fail_after_s=0.4,
            table_size=40_000, campaign="ISP_A-Vendor",
        ),
        "ISP_A-Quagga": run_peer_group_episode(
            seed=102, hold_time_s=90, fail_after_s=0.3,
            table_size=40_000, campaign="ISP_A-Quagga",
        ),
        "RV": run_peer_group_episode(
            seed=103, hold_time_s=60, fail_after_s=0.3,
            table_size=40_000, campaign="RV",
        ),
    }


@pytest.fixture(scope="session")
def concurrency_sweep():
    """The paper's Figure 15 sweep."""
    return run_concurrency_sweep(concurrencies=(1, 2, 4, 8, 12, 16))


@pytest.fixture(scope="session")
def artifact_writer():
    """Persist a regenerated artifact under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> Path:
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text)
        return path

    return write


def percentile(sorted_values, q: float):
    """The q-quantile (0..1) of an ascending list."""
    if not sorted_values:
        return float("nan")
    index = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[index]
