"""Figure 8 — upstream consecutive losses.

Paper: packets lost between the sender and the sniffer never appear in
the capture; the sniffer instead sees out-of-order packets following
the missing sequence gap, and the later gap-fills are classified as
retransmissions due to *upstream* loss.
"""

import random

from repro.analysis.labeling import KIND_DOWNSTREAM, KIND_UPSTREAM
from repro.analysis.tdat import analyze_pcap
from repro.bgp.table import generate_table
from repro.core.units import seconds
from repro.netsim.link import BernoulliLoss
from repro.netsim.random import RandomStreams
from repro.netsim.simulator import Simulator
from repro.workloads.scenarios import MonitoringSetup, RouterParams


def run_scenario():
    sim = Simulator()
    streams = RandomStreams(88)
    setup = MonitoringSetup(sim)
    table = generate_table(40_000, random.Random(8))
    handle = setup.add_router(
        RouterParams(
            name="r1",
            ip="10.8.0.1",
            table=table,
            upstream_loss=BernoulliLoss(0.04, streams.stream("loss")),
        )
    )
    setup.start()
    sim.run(until_us=seconds(600))
    return setup, handle


def build_figure(setup, handle):
    report = analyze_pcap(setup.sniffer.sorted_records(), min_data_packets=2)
    analysis = next(iter(report))
    labeling = analysis.labeling
    up = labeling.count(KIND_UPSTREAM)
    down = labeling.count(KIND_DOWNSTREAM)
    dropped = handle.wan_link.stats.dropped_loss
    network = analysis.series.catalog.get_or_empty("NetworkLoss")
    lines = [
        f"packets dropped before the tap (ground truth): {dropped}",
        f"labeled upstream retransmissions: {up}",
        f"labeled downstream retransmissions: {down}",
        f"NetworkLoss recovery time: {network.size() / 1e6:.2f}s "
        f"over {len(network)} range(s)",
    ]
    return "\n".join(lines), (analysis, up, down, dropped)


def test_fig8(artifact_writer, benchmark):
    setup, handle = run_scenario()
    text, (analysis, up, down, dropped) = benchmark(build_figure, setup, handle)
    artifact_writer("fig8_upstream", text)
    print("\n" + text)
    assert dropped > 0, "scenario produced no upstream drops"
    # The tap never saw the originals: gap-fills classify as upstream.
    assert up >= 5
    assert up > down
    # With a receiver-side tap, upstream loss maps to the network group.
    assert analysis.factors.ratios["network_packet_loss"] > 0
