"""Ablation — sensitivity of the major-factor threshold.

The paper (section IV-A): "We test the threshold between 0.3 to 0.5,
and it does not qualitatively affect the relative importance among
delay factors."  This ablation recomputes the Table IV group ordering
at thresholds 0.3, 0.4 and 0.5 and checks the ordering is stable.
"""

THRESHOLDS = (0.3, 0.4, 0.5)


def build_ablation(campaigns):
    lines = [f"{'trace':14s} {'thr':>4s} {'sender':>7s} {'recv':>5s} {'net':>4s}"]
    orderings = {}
    for name, result in campaigns.items():
        per_threshold = {}
        for threshold in THRESHOLDS:
            counts = {"sender": 0, "receiver": 0, "network": 0}
            for record in result.records:
                for group in record.factors.major_groups(threshold):
                    counts[group] += 1
            per_threshold[threshold] = counts
            lines.append(
                f"{name:14s} {threshold:4.1f} {counts['sender']:7d} "
                f"{counts['receiver']:5d} {counts['network']:4d}"
            )
        orderings[name] = per_threshold
    return "\n".join(lines), orderings


def test_threshold_ablation(campaigns, artifact_writer, benchmark):
    text, orderings = benchmark(build_ablation, campaigns)
    artifact_writer("ablation_threshold", text)
    print("\n" + text)
    for name, per_threshold in orderings.items():
        # The qualitative ordering sender >= receiver >= network holds
        # at every threshold (the paper's robustness claim).
        for threshold, counts in per_threshold.items():
            assert counts["sender"] >= counts["receiver"], (name, threshold)
            assert counts["receiver"] >= counts["network"], (name, threshold)
        # Counts shrink (weakly) as the threshold tightens.
        for group in ("sender", "receiver", "network"):
            series = [per_threshold[t][group] for t in THRESHOLDS]
            assert series == sorted(series, reverse=True), (name, group)
