"""Analyzer throughput (paper section V-C).

The paper's Perl prototype processed the 47GB RouteViews trace in 64
minutes — 26 seconds per TCP connection on average.  This benchmark
times the full T-DAT pipeline (parse + label + shift + series +
factors + detectors) on one moderately sized captured connection.
"""

import random

from repro.analysis.tdat import analyze_pcap
from repro.bgp.table import generate_table
from repro.core.units import seconds
from repro.netsim.link import BernoulliLoss
from repro.netsim.random import RandomStreams
from repro.netsim.simulator import Simulator
from repro.wire.pcap import records_to_bytes
from repro.workloads.scenarios import MonitoringSetup, RouterParams


def make_capture():
    sim = Simulator()
    streams = RandomStreams(777)
    setup = MonitoringSetup(sim)
    table = generate_table(60_000, random.Random(77))
    setup.add_router(
        RouterParams(
            name="r1",
            ip="10.99.0.1",
            table=table,
            upstream_loss=BernoulliLoss(0.01, streams.stream("loss")),
        )
    )
    setup.start()
    sim.run(until_us=seconds(600))
    return setup.sniffer.sorted_records()


def test_analyzer_throughput(artifact_writer, benchmark):
    records = make_capture()
    blob = records_to_bytes(records)

    def analyze():
        import io

        return analyze_pcap(io.BytesIO(blob))

    report = benchmark(analyze)
    assert len(report) == 1
    analysis = next(iter(report))
    packets = analysis.connection.profile.total_data_packets
    text = (
        f"capture: {len(records)} frames, {len(blob)} pcap bytes\n"
        f"connection: {packets} data packets\n"
        "full pipeline timing: see pytest-benchmark table\n"
        "(paper's Perl prototype: ~26s per connection)"
    )
    artifact_writer("throughput", text)
    print("\n" + text)
