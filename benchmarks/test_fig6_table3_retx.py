"""Figure 6 + Table III — consecutive retransmissions delay BGP updates.

Paper: a connection suffers episodes of consecutive retransmissions;
updates the router emitted *at the same instant* reach the receiving
BGP process 1-13 seconds apart.  Without the packet trace these delay
gaps would be misread as BGP protocol dynamics.

The regenerated Table III lists reconstructed UPDATE arrival times and
their delay relative to the episode start.
"""

import random

from repro.analysis.tdat import analyze_pcap
from repro.bgp.table import generate_table
from repro.core.units import seconds
from repro.netsim.link import WindowLoss
from repro.netsim.simulator import Simulator
from repro.tools.pcap2bgp import pcap_to_bgp
from repro.workloads.scenarios import MonitoringSetup, RouterParams


def run_scenario():
    sim = Simulator()
    setup = MonitoringSetup(sim)
    table = generate_table(40_000, random.Random(6))
    setup.add_router(
        RouterParams(
            name="r1",
            ip="10.6.0.1",
            table=table,
            # A receiver-local blackout kills two successive flights.
            downstream_loss=WindowLoss([(seconds(0.06), seconds(1.2))]),
        )
    )
    setup.start()
    sim.run(until_us=seconds(300))
    return setup.sniffer.sorted_records()


def build_table(records):
    from repro.analysis.profile import Trace
    from repro.tools.correlate import delayed_updates

    report = analyze_pcap(records, min_data_packets=2)
    analysis = next(iter(report))
    retx = analysis.labeling.retransmissions()
    # Per-update wire-to-delivery delay, message-to-packet correlated —
    # exactly the paper's Table III columns.
    connection = next(iter(Trace.from_pcap(records)))
    delayed = delayed_updates(connection, min_delay_us=500_000)
    lines = [
        f"retransmissions: {len(retx)}; delayed updates: {len(delayed)}",
        f"{'arrival_s':>9s} {'delay_s':>8s} {'retx':>5s}  first prefix",
    ]
    for item in delayed[:15]:
        prefix = (
            item.message.announced[0] if item.message.announced else "-"
        )
        lines.append(
            f"{item.delivered_us / 1e6:9.2f} {item.delay_us / 1e6:8.2f} "
            f"{str(item.retransmitted):>5s}  {prefix}"
        )
    delays = [item.delay_us / 1e6 for item in delayed]
    return "\n".join(lines), (analysis, delays)


def test_fig6_table3(artifact_writer, benchmark):
    records = run_scenario()
    text, (analysis, delays) = benchmark(build_table, records)
    artifact_writer("fig6_table3_retx", text)
    print("\n" + "\n".join(text.splitlines()[:6]))
    # The episode is a detected consecutive-retransmission event.
    assert analysis.consecutive_losses.detected
    assert analysis.consecutive_losses.worst_run >= 8
    # Updates queued together arrive seconds apart (paper: 1-13s).
    assert delays, "no delayed updates found"
    assert max(delays) > 1.0
