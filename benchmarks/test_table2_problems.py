"""Table II — transport problems observed in slow table transfers.

Paper method (section II-B): per router, inspect transfers slower than
mean + 3 sigma (or the slowest one), and count the observed problems:
timer gaps, consecutive retransmissions, peer-group blocking.
"""

import statistics
from collections import defaultdict


def sample_slow_transfers(result):
    """The paper's mu + 3*sigma (fallback: slowest) sampling rule."""
    by_router = defaultdict(list)
    for record in result.records:
        by_router[record.router].append(record)
    sampled = []
    for records in by_router.values():
        durations = [r.duration_s for r in records]
        if len(durations) >= 2:
            mu = statistics.mean(durations)
            sigma = statistics.pstdev(durations)
            slow = [r for r in records if r.duration_s > mu + 3 * sigma]
        else:
            slow = []
        if not slow:
            # Fallback: this router's slowest transfers.
            slow = sorted(records, key=lambda r: r.duration_s)[-2:]
        sampled.extend(slow)
    return sampled


def build_table(campaigns, peer_group_episodes):
    sampled = []
    for result in campaigns.values():
        sampled.extend(sample_slow_transfers(result))
    gaps = sum(1 for r in sampled if r.timer.detected)
    consecutive = sum(1 for r in sampled if r.consecutive.detected)
    blocking = sum(
        1 for e in peer_group_episodes.values() if e.blocked_report.detected
    )
    lines = [
        f"sampled slow transfers: {len(sampled)}",
        f"{'Observation':34s} {'Num':>4s}",
        f"{'Gaps in table transfers':34s} {gaps:4d}",
        f"{'Consecutive retransmission':34s} {consecutive:4d}",
        f"{'BGP peer-group blocking':34s} {blocking:4d}",
    ]
    return "\n".join(lines), (gaps, consecutive, blocking)


def test_table2(campaigns, peer_group_episodes, artifact_writer, benchmark):
    text, (gaps, consecutive, blocking) = benchmark(
        build_table, campaigns, peer_group_episodes
    )
    artifact_writer("table2_problems", text)
    print("\n" + text)
    # All three problem classes appear among the slow transfers, as in
    # the paper's Table II (25 / 58 / 15 there).
    assert gaps >= 1
    assert consecutive >= 1
    assert blocking >= 1
