"""Figure 7 — downstream (receiver-local) consecutive losses.

Paper: the sniffer sees a complete packet flight, but the receiver
acknowledges only part of it — the rest died between the sniffer and
the receiver (the collector's interface), triggering multiple rounds of
retransmissions that T-DAT classifies as *downstream* losses.
"""

import random

from repro.analysis.labeling import KIND_DOWNSTREAM, KIND_UPSTREAM
from repro.analysis.tdat import analyze_pcap
from repro.bgp.table import generate_table
from repro.core.units import seconds
from repro.netsim.link import WindowLoss
from repro.netsim.simulator import Simulator
from repro.workloads.scenarios import MonitoringSetup, RouterParams


def run_scenario():
    sim = Simulator()
    setup = MonitoringSetup(sim)
    table = generate_table(30_000, random.Random(7))
    handle = setup.add_router(
        RouterParams(
            name="r1",
            ip="10.7.0.1",
            table=table,
            downstream_loss=WindowLoss([(seconds(0.05), seconds(0.8))]),
        )
    )
    setup.start()
    sim.run(until_us=seconds(300))
    return setup, handle


def build_figure(setup, handle):
    report = analyze_pcap(setup.sniffer.sorted_records(), min_data_packets=2)
    analysis = next(iter(report))
    labeling = analysis.labeling
    down = labeling.count(KIND_DOWNSTREAM)
    up = labeling.count(KIND_UPSTREAM)
    dropped = handle.local_link.stats.dropped_loss
    recv = analysis.series.catalog.get_or_empty("RecvLocalLoss")
    lines = [
        f"packets dropped after the tap (ground truth): {dropped}",
        f"labeled downstream retransmissions: {down}",
        f"labeled upstream retransmissions: {up}",
        f"RecvLocalLoss recovery time: {recv.size() / 1e6:.2f}s "
        f"over {len(recv)} range(s)",
    ]
    return "\n".join(lines), (analysis, down, up, dropped)


def test_fig7(artifact_writer, benchmark):
    setup, handle = run_scenario()
    text, (analysis, down, up, dropped) = benchmark(build_figure, setup, handle)
    artifact_writer("fig7_downstream", text)
    print("\n" + text)
    assert dropped > 0, "scenario produced no receiver-local drops"
    # The tap saw the originals: losses classify as downstream.
    assert down >= 5
    assert down > up
    # The factor machinery attributes the delay to receiver-local loss.
    assert analysis.factors.ratios["receiver_local_loss"] > 0
