"""Figure 3 — CDF of table transfer duration per trace.

Paper shape: the majority of transfers finish within minutes; the
Quagga and RV traces are slower than the vendor trace; a heavy tail
reaches past 10 minutes.  Our simulated tables are ~40x smaller than a
full 2010 table, so absolute durations scale down accordingly — the
ordering and the heavy tail are the reproduced shape.
"""

from benchmarks.conftest import percentile

QUANTILES = (0.1, 0.25, 0.5, 0.8, 0.9, 1.0)


def build_cdf(campaigns):
    lines = [
        "duration CDF (seconds)",
        f"{'trace':14s}" + "".join(f" p{int(q * 100):>3d}" for q in QUANTILES),
    ]
    stats = {}
    for name, result in campaigns.items():
        durations = result.durations_s()
        row = [percentile(durations, q) for q in QUANTILES]
        stats[name] = row
        lines.append(
            f"{name:14s}" + "".join(f" {v:7.2f}" for v in row)
        )
    return "\n".join(lines), stats


def test_fig3(campaigns, artifact_writer, benchmark):
    text, stats = benchmark(build_cdf, campaigns)
    artifact_writer("fig3_duration_cdf", text)
    print("\n" + text)
    for name, row in stats.items():
        median, worst = row[2], row[-1]
        # Heavy tail: the slowest transfer is at least 5x the median.
        assert worst >= 5 * median, f"{name} lacks a heavy tail"
    # Transfers span orders of magnitude overall.
    all_durations = [
        d for result in campaigns.values() for d in result.durations_s()
    ]
    assert max(all_durations) / max(min(all_durations), 1e-9) > 50
