"""The ZeroAckBug discovery (paper section IV-B, unnumbered finding).

Paper: intersecting series exposed a conflict — connections that were
zero-window bounded *and* suffering losses at the same time.  The root
cause: a sender that discards its zero-window probe when a window
update races it, stalling until timer-driven retransmissions recover.
"""

from repro.workloads.campaign import isp_quagga_config, run_zero_ack_bug_episode


def build_report(record):
    lines = [
        f"transfer duration: {record.duration_s:.2f}s",
        f"ZeroAckBug series: {record.zero_bug.occurrences} occurrence(s), "
        f"{record.zero_bug.induced_delay_us / 1e6:.3f}s of coincident "
        "zero-window + loss-recovery time",
        f"detected: {record.zero_bug.detected}",
    ]
    return "\n".join(lines), record


def test_zero_ack_bug(artifact_writer, benchmark):
    record = run_zero_ack_bug_episode(isp_quagga_config())
    assert record is not None
    text, record = benchmark(build_report, record)
    artifact_writer("zeroackbug", text)
    print("\n" + text)
    assert record.zero_bug.detected
    assert record.zero_bug.occurrences >= 1
