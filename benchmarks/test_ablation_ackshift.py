"""Ablation — what the ACK-shift step buys (paper section III-B1).

With a receiver-side tap, ACKs appear almost immediately after the data
they acknowledge; without shifting them toward the sender's timeline, a
window-limited transfer looks like a sender that idles between flights
(because the ACK-wait is invisible) and T-DAT misattributes the delay
to the sending application.  This ablation runs the same capture with
the shift disabled and enabled, and shows the attribution flip.
"""

import random

from repro.analysis.profile import Trace
from repro.analysis.tdat import analyze_connection
from repro.bgp.table import generate_table
from repro.core.units import seconds
from repro.netsim.simulator import Simulator
from repro.tcp.options import TcpConfig
from repro.workloads.scenarios import MonitoringSetup, RouterParams


def make_window_limited_capture():
    """A 16KB-window transfer over a long path: purely receiver bound."""
    sim = Simulator()
    setup = MonitoringSetup(
        sim, collector_tcp=TcpConfig(recv_buffer_bytes=16384)
    )
    table = generate_table(60_000, random.Random(41))
    setup.add_router(
        RouterParams(
            name="r1",
            ip="10.41.0.1",
            table=table,
            upstream_delay_us=25_000,  # ~51ms RTT
        )
    )
    setup.start()
    sim.run(until_us=seconds(300))
    return setup.sniffer.sorted_records()


def build_ablation(records):
    results = {}
    for shifted in (False, True):
        trace = Trace.from_pcap(records)
        connection = next(iter(trace))
        # The analysis window is the transfer proper: keepalives after
        # the table has drained are not part of it.
        payload = [
            p for p in connection.data_packets() if not p.is_bgp_keepalive()
        ]
        window = (payload[0].timestamp_us, payload[-1].timestamp_us)
        analysis = analyze_connection(connection, window=window,
                                      enable_ack_shift=shifted)
        results[shifted] = analysis.factors
    lines = [f"{'ack shift':>9s} {'send_app':>9s} {'tcp_adv':>8s} {'cwnd':>6s}"]
    for shifted, factors in results.items():
        lines.append(
            f"{str(shifted):>9s} "
            f"{factors.ratios['bgp_sender_app']:9.3f} "
            f"{factors.ratios['tcp_advertised_window']:8.3f} "
            f"{factors.ratios['tcp_congestion_window']:6.3f}"
        )
    return "\n".join(lines), results


def test_ackshift_ablation(artifact_writer, benchmark):
    records = make_window_limited_capture()
    text, results = benchmark(build_ablation, records)
    artifact_writer("ablation_ackshift", text)
    print("\n" + text)
    without = results[False]
    with_shift = results[True]
    # With the shift, the transfer is correctly receiver-window bound.
    assert with_shift.ratios["tcp_advertised_window"] > 0.5
    assert with_shift.ratios["bgp_sender_app"] < 0.2
    # Without it, the receiver-side attribution collapses and the idle
    # ACK-waits leak into sender-side factors.
    assert (
        without.ratios["tcp_advertised_window"]
        < with_shift.ratios["tcp_advertised_window"] / 2
    )
    misattributed = (
        without.ratios["bgp_sender_app"]
        + without.ratios["tcp_congestion_window"]
    )
    assert misattributed > with_shift.ratios["bgp_sender_app"] + 0.2
