"""Figure 16 — transfer duration CDF broken down by major delay factor.

Paper shape: TCP-receiver-window-limited transfers are the fastest
(TCP keeps pumping every RTT, just with a bounded window), congestion-
window-limited next; loss-limited transfers waste time in timeouts and
are the slowest, with BGP-application-limited transfers also long.
"""

from collections import defaultdict

import statistics

FACTOR_BUCKETS = {
    "tcp_advertised_window": "tcp-window",
    "tcp_congestion_window": "tcp-cwnd",
    "bgp_sender_app": "bgp-app",
    "bgp_receiver_app": "bgp-app",
    "receiver_local_loss": "loss",
    "network_packet_loss": "loss",
    "sender_local_loss": "loss",
    "bandwidth_limited": "bandwidth",
}


def build_figure(campaigns):
    durations = defaultdict(list)
    for result in campaigns.values():
        for record in result.records:
            majors = record.factors.major_factors()
            if not majors:
                durations["unknown"].append(record.duration_s)
                continue
            for factor in majors.values():
                durations[FACTOR_BUCKETS.get(factor, factor)].append(
                    record.duration_s
                )
    lines = [f"{'factor':12s} {'n':>3s} {'median_s':>9s} {'max_s':>8s}"]
    medians = {}
    for bucket, values in sorted(durations.items()):
        med = statistics.median(values)
        medians[bucket] = med
        lines.append(
            f"{bucket:12s} {len(values):3d} {med:9.2f} {max(values):8.2f}"
        )
    return "\n".join(lines), medians


def test_fig16(campaigns, artifact_writer, benchmark):
    text, medians = benchmark(build_figure, campaigns)
    artifact_writer("fig16_duration_by_factor", text)
    print("\n" + text)
    # Window-limited transfers are the fastest...
    window_side = [
        medians[b] for b in ("tcp-window", "tcp-cwnd") if b in medians
    ]
    assert window_side, "no window-limited transfers observed"
    fastest_window = min(window_side)
    # ...application-limited transfers are slower...
    if "bgp-app" in medians:
        assert medians["bgp-app"] > fastest_window
    # ...and loss-limited transfers are slower than window-limited ones.
    if "loss" in medians:
        assert medians["loss"] > fastest_window
