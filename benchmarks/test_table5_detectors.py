"""Table V — known problems identified per trace, with induced delays.

Paper rows: timer gaps (857/74/7 transfers; 7-19s average induced
delay), consecutive losses (2092/176/29; ~5s in ISP_A but 31s in RV
whose TCP backs off aggressively), and peer-group blocking upon resets
(8/8/3; 94-135s).  The reproduced shape: every detector fires in every
campaign where its pathology was injected; RV's consecutive-loss delay
exceeds ISP_A's; peer-group blocking costs roughly a hold time.
"""


def mean(values):
    return sum(values) / len(values) if values else 0.0


def build_table(campaigns, peer_group_episodes):
    lines = [
        f"{'trace':14s} {'problem':24s} {'count':>5s} {'avg delay (s)':>14s}"
    ]
    stats = {}
    for name, result in campaigns.items():
        timer_hits = [r for r in result.records if r.timer.detected]
        loss_hits = [r for r in result.records if r.consecutive.detected]
        timer_delay = mean([r.timer.induced_delay_us / 1e6 for r in timer_hits])
        loss_delay = mean(
            [r.consecutive.induced_delay_us / 1e6 for r in loss_hits]
        )
        episode = peer_group_episodes[name]
        pg_count = 1 if episode.blocked_report.detected else 0
        pg_delay = episode.blocking_duration_us / 1e6
        stats[name] = {
            "timer": (len(timer_hits), timer_delay),
            "loss": (len(loss_hits), loss_delay),
            "peer-group": (pg_count, pg_delay),
        }
        lines.append(
            f"{name:14s} {'Gaps in table transfers':24s} "
            f"{len(timer_hits):5d} {timer_delay:14.2f}"
        )
        lines.append(
            f"{name:14s} {'Consecutive losses':24s} "
            f"{len(loss_hits):5d} {loss_delay:14.2f}"
        )
        lines.append(
            f"{name:14s} {'Peer-group blocking':24s} "
            f"{pg_count:5d} {pg_delay:14.2f}"
        )
    return "\n".join(lines), stats


def test_table5(campaigns, peer_group_episodes, artifact_writer, benchmark):
    text, stats = benchmark(build_table, campaigns, peer_group_episodes)
    artifact_writer("table5_detectors", text)
    print("\n" + text)
    for name, rows in stats.items():
        # Timer gaps and consecutive losses detected in every campaign.
        assert rows["timer"][0] >= 1, f"{name}: no timer gaps found"
        assert rows["loss"][0] >= 1, f"{name}: no consecutive losses found"
        # Peer-group blocking detected, costing roughly a hold time.
        assert rows["peer-group"][0] == 1, name
        assert rows["peer-group"][1] > 30, name
    # RV's aggressive RTO backoff makes its loss episodes costlier than
    # ISP_A's (paper: 31s vs ~5s).
    assert stats["RV"]["loss"][1] > stats["ISP_A-Quagga"]["loss"][1]
