"""Table I — summary of the BGP/TCP datasets and identified transfers.

Paper columns: trace name, type, collector, packets/bytes, routers and
the number of identified table transfers.  Ours are scaled-down
simulated campaigns; the row structure and relative magnitudes
(Vendor > Quagga > RV in transfer counts) are what must reproduce.
"""


def build_table(campaigns):
    lines = [
        f"{'Trace':14s} {'Collector':9s} {'#Rtrs':>5s} {'#Pkts':>8s} "
        f"{'Bytes':>12s} {'#Transfers':>10s}"
    ]
    rows = {}
    for name, result in campaigns.items():
        rows[name] = len(result.records)
        lines.append(
            f"{name:14s} {result.collector_kind:9s} {result.routers:5d} "
            f"{result.total_packets:8d} {result.total_bytes:12d} "
            f"{len(result.records):10d}"
        )
    return "\n".join(lines), rows


def test_table1(campaigns, artifact_writer, benchmark):
    text, rows = benchmark(build_table, campaigns)
    artifact_writer("table1_datasets", text)
    print("\n" + text)
    # Shape: the vendor trace has the most transfers (the paper's
    # vendor bug made it an outlier), RV the fewest.
    assert rows["ISP_A-Vendor"] > rows["ISP_A-Quagga"] > rows["RV"]
    for result in campaigns.values():
        assert result.total_packets > 0
        assert result.total_bytes > 0
