"""Figure 14 — sender vs receiver delay-ratio scatter per trace.

Paper shape: network ratios near zero almost everywhere; vendor-trace
transfers cluster at high sender ratios; Quagga transfers hug the
x + y = 1 line (sender- or receiver-bound); the transfer's triggering
end tends to carry the larger ratio.
"""


def build_scatter(campaigns):
    lines = ["trace, episode, trigger, Rs, Rr, Rn"]
    points = {name: [] for name in campaigns}
    for name, result in campaigns.items():
        for record in result.records:
            rs, rr, rn = record.factors.group_vector
            points[name].append((rs, rr, rn, record.trigger))
            lines.append(
                f"{name}, {record.episode}, {record.trigger}, "
                f"{rs:.3f}, {rr:.3f}, {rn:.3f}"
            )
    return "\n".join(lines), points


def test_fig14(campaigns, artifact_writer, benchmark):
    text, points = benchmark(build_scatter, campaigns)
    artifact_writer("fig14_scatter", text)
    all_points = [p for pts in points.values() for p in pts]
    print(f"\n{len(all_points)} scatter points across "
          f"{len(points)} traces")
    # Network ratio is near zero for the vast majority of transfers.
    low_network = sum(1 for rs, rr, rn, _ in all_points if rn < 0.3)
    assert low_network / len(all_points) > 0.8
    # Sender-side ratios dominate overall (the paper's clustering).
    sender_heavy = sum(1 for rs, rr, rn, _ in all_points if rs >= rr)
    assert sender_heavy / len(all_points) > 0.5
    # Receiver-bound transfers exist too (the x + y = 1 spread).
    assert any(rr > 0.5 for _, rr, _, _ in all_points)
