#!/usr/bin/env python3
"""Deprecated launcher: the benchmark harness moved to ``tdat bench``.

This script is the pre-promotion entry point kept for compatibility;
it delegates to :mod:`repro.tools.bench` (run it as ``tdat bench`` or
``python -m repro.tools.bench``).  Every historical flag still works —
``--obs-overhead`` and ``--checkpoint-overhead`` map onto the modes of
the promoted harness.  Removal schedule: see the deprecation table in
``docs/architecture.md``.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def main(argv: list[str] | None = None) -> int:
    if str(REPO_SRC) not in sys.path:
        sys.path.insert(0, str(REPO_SRC))
    from repro.core.deprecation import warn_deprecated

    warn_deprecated(
        "benchmarks/bench_campaign.py is deprecated; run `tdat bench` "
        "(repro.tools.bench) instead"
    )
    from repro.tools.bench import main as bench_main

    return bench_main(argv)


if __name__ == "__main__":
    sys.exit(main())
