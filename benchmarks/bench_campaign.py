#!/usr/bin/env python3
"""Benchmark the parallel campaign engine against the serial baseline.

Runs the same campaign twice — ``workers=1`` and ``workers=N`` — each
in a fresh subprocess (so wall time and peak RSS are clean, with no
warm caches or shared interpreter state), verifies the two runs
produced byte-identical reports, and appends one entry to a
schema-versioned JSON history::

    python benchmarks/bench_campaign.py --transfers 6 --workers 2 \
        --out BENCH_campaign.json --timestamp "$(date -u -Iseconds)"

The output file is ``{"schema": 1, "runs": [...]}`` — one entry per
invocation, stamped with the repo's git SHA and the supplied
``--timestamp``, so the file accumulates a comparable performance
history across commits.  A pre-existing file in any other shape is
replaced with a fresh history.

Speedup is machine-dependent: on a single-CPU box the parallel run
cannot win and the report says so honestly (``cpus`` is recorded).
Pass ``--assert-speedup X`` to fail the run unless speedup >= X —
CI uses this on multi-core runners as a regression gate.

``--obs-overhead`` additionally measures the observability subsystem:
a serial run with observability enabled, a second disabled sample, and
a no-op dispatch micro-benchmark, with ``--assert-obs-overhead`` /
``--assert-obs-disabled-overhead`` as CI gates on the ratios.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parent.parent / "src"

#: bump when the BENCH_campaign.json entry layout changes incompatibly.
SCHEMA = 1


def _git_sha() -> str:
    """The repo's HEAD commit, or a CI-provided SHA, or "unknown"."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10,
        )
        if proc.returncode == 0 and proc.stdout.strip():
            return proc.stdout.strip()
    except OSError:
        pass
    return os.environ.get("GITHUB_SHA", "unknown")


def _append_history(out: Path, entry: dict) -> None:
    """Append ``entry`` to the schema-versioned run history at ``out``."""
    history = {"schema": SCHEMA, "runs": []}
    if out.exists():
        try:
            existing = json.loads(out.read_text())
            if (
                isinstance(existing, dict)
                and existing.get("schema") == SCHEMA
                and isinstance(existing.get("runs"), list)
            ):
                history = existing
        except (OSError, json.JSONDecodeError):
            pass  # non-conforming file: start a fresh history
    history["runs"].append(entry)
    out.write_text(json.dumps(history, indent=2) + "\n")


def _child(args: argparse.Namespace) -> int:
    """One measured run; emits a single JSON line on stdout."""
    from repro.api import Pipeline

    start = time.perf_counter()
    result = Pipeline(workers=args.workers, obs=args.obs).campaign(
        args.campaign,
        seed=args.seed,
        transfers=args.transfers,
        overrides={"zero_bug_episodes": 0},
        checkpoint_dir=args.checkpoint_dir or None,
    )
    wall_s = time.perf_counter() - start
    payload = json.dumps(result.to_dict(), sort_keys=True)
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        children = resource.getrusage(resource.RUSAGE_CHILDREN)
        peak_rss_kb = max(usage.ru_maxrss, children.ru_maxrss)
    except ImportError:  # non-POSIX: report what we can
        peak_rss_kb = 0
    print(json.dumps({
        "wall_s": wall_s,
        "records": len(result.records),
        "digest": hashlib.sha256(payload.encode()).hexdigest(),
        "peak_rss_kb": peak_rss_kb,
        "health_ok": result.health.ok,
    }))
    return 0


def _measure(
    args: argparse.Namespace,
    workers: int,
    checkpoint_dir: str = "",
    obs: bool = False,
) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [
        sys.executable, str(Path(__file__).resolve()),
        "--as-child",
        "--campaign", args.campaign,
        "--seed", str(args.seed),
        "--transfers", str(args.transfers),
        "--workers", str(workers),
    ]
    if checkpoint_dir:
        cmd += ["--checkpoint-dir", checkpoint_dir]
    if obs:
        cmd += ["--obs"]
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise RuntimeError(f"child run (workers={workers}) failed")
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _noop_dispatch_ns(iterations: int = 200_000) -> float:
    """Per-operation cost of a disabled instrumentation point, in ns.

    Measures the exact disabled fast path instrumented code takes:
    ``get_obs()`` once plus an ``enabled`` check per operation — the
    "disabled costs ~nothing" contract, quantified.
    """
    from repro.obs import get_obs

    counter = get_obs().metrics.counter("bench.noop")
    start = time.perf_counter()
    for _ in range(iterations):
        obs = get_obs()
        if obs.enabled:
            counter.inc()
    elapsed = time.perf_counter() - start
    return elapsed / iterations * 1e9


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--campaign", default="ISP_A-Quagga")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--transfers", type=int, default=6)
    parser.add_argument(
        "--workers", type=int, default=4,
        help="worker count of the parallel run (default: 4)",
    )
    parser.add_argument("--out", default="BENCH_campaign.json")
    parser.add_argument(
        "--timestamp", default="",
        help="ISO timestamp recorded in the history entry (the caller "
        "supplies it; the benchmark never reads the clock for metadata)",
    )
    parser.add_argument(
        "--assert-speedup", type=float, metavar="X",
        help="exit nonzero unless parallel speedup >= X",
    )
    parser.add_argument(
        "--checkpoint-overhead", action="store_true",
        help="also measure a serial run with episode checkpointing "
        "(fsync'd journal) and report its overhead vs. the plain run",
    )
    parser.add_argument(
        "--obs-overhead", action="store_true",
        help="also measure observability: a serial run with metrics + "
        "tracing enabled, a second disabled sample, and the no-op "
        "dispatch micro-benchmark",
    )
    parser.add_argument(
        "--assert-obs-overhead", type=float, metavar="X",
        help="with --obs-overhead: exit nonzero unless the obs-enabled "
        "run is within ratio X of the plain serial run",
    )
    parser.add_argument(
        "--assert-obs-disabled-overhead", type=float, metavar="X",
        help="with --obs-overhead: exit nonzero unless a second "
        "obs-disabled sample stays within ratio X of the plain serial "
        "run (the guard that the no-op dispatch path costs ~nothing)",
    )
    parser.add_argument(
        "--as-child", action="store_true", help=argparse.SUPPRESS
    )
    parser.add_argument(
        "--checkpoint-dir", default="", help=argparse.SUPPRESS
    )
    parser.add_argument(
        "--obs", action="store_true", help=argparse.SUPPRESS
    )
    args = parser.parse_args(argv)
    if args.as_child:
        return _child(args)

    sys.path.insert(0, str(REPO_SRC))
    from repro.exec.pool import available_parallelism

    print(f"serial run: {args.campaign}, {args.transfers} transfers ...")
    serial = _measure(args, workers=1)
    print(f"  {serial['wall_s']:.1f}s, {serial['records']} records")
    print(f"parallel run: workers={args.workers} ...")
    parallel = _measure(args, workers=args.workers)
    print(f"  {parallel['wall_s']:.1f}s, {parallel['records']} records")

    identical = serial["digest"] == parallel["digest"]
    speedup = serial["wall_s"] / parallel["wall_s"]
    summary = {
        "benchmark": "campaign",
        "git_sha": _git_sha(),
        "timestamp": args.timestamp or "unknown",
        "campaign": args.campaign,
        "seed": args.seed,
        "transfers": args.transfers,
        "workers": args.workers,
        "cpus": available_parallelism(),
        "serial": {
            "wall_s": round(serial["wall_s"], 3),
            "transfers_per_s": round(serial["records"] / serial["wall_s"], 4),
            "peak_rss_kb": serial["peak_rss_kb"],
        },
        "parallel": {
            "wall_s": round(parallel["wall_s"], 3),
            "transfers_per_s": round(
                parallel["records"] / parallel["wall_s"], 4
            ),
            "peak_rss_kb": parallel["peak_rss_kb"],
        },
        "speedup": round(speedup, 3),
        "identical": identical,
    }

    if args.checkpoint_overhead:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="bench-ckpt-") as ckpt:
            print("checkpointed serial run (fsync'd journal) ...")
            journaled = _measure(args, workers=1, checkpoint_dir=ckpt)
        print(f"  {journaled['wall_s']:.1f}s, {journaled['records']} records")
        summary["checkpointed"] = {
            "wall_s": round(journaled["wall_s"], 3),
            "peak_rss_kb": journaled["peak_rss_kb"],
            "identical_to_serial": journaled["digest"] == serial["digest"],
            # >1.0 means the journal costs time; the interesting number
            # for deciding whether to checkpoint long campaigns.
            "overhead_ratio": round(
                journaled["wall_s"] / serial["wall_s"], 3
            ),
        }

    if args.obs_overhead:
        print("obs-enabled serial run (metrics + tracing) ...")
        enabled = _measure(args, workers=1, obs=True)
        print(f"  {enabled['wall_s']:.1f}s, {enabled['records']} records")
        # Two samples, best-of: the disabled path is identical code to
        # the serial baseline, so any measured "overhead" is run-to-run
        # noise — one extra sample keeps the guard from flaking on a
        # single slow scheduler quantum.
        print("obs-disabled serial runs (no-op samples) ...")
        disabled_samples = [_measure(args, workers=1) for _ in range(2)]
        disabled_wall = min(s["wall_s"] for s in disabled_samples)
        for sample in disabled_samples:
            print(f"  {sample['wall_s']:.1f}s, {sample['records']} records")
        summary["obs"] = {
            "enabled_wall_s": round(enabled["wall_s"], 3),
            "disabled_wall_s": round(disabled_wall, 3),
            "identical_to_serial": enabled["digest"] == serial["digest"]
            and all(
                s["digest"] == serial["digest"] for s in disabled_samples
            ),
            # >1.0 means turning observability on costs time.
            "enabled_overhead_ratio": round(
                enabled["wall_s"] / serial["wall_s"], 3
            ),
            # The guard that the always-compiled-in no-op dispatch path
            # costs ~nothing.
            "disabled_overhead_ratio": round(
                disabled_wall / serial["wall_s"], 3
            ),
            "noop_dispatch_ns": round(_noop_dispatch_ns(), 1),
        }

    _append_history(Path(args.out), summary)
    print(json.dumps(summary, indent=2))
    print(f"summary appended -> {args.out}")

    if not identical:
        print("FAIL: parallel report differs from serial", file=sys.stderr)
        return 1
    if args.checkpoint_overhead and not summary["checkpointed"][
        "identical_to_serial"
    ]:
        print(
            "FAIL: checkpointed report differs from plain serial",
            file=sys.stderr,
        )
        return 1
    if args.assert_speedup is not None and speedup < args.assert_speedup:
        print(
            f"FAIL: speedup {speedup:.2f} < required "
            f"{args.assert_speedup:.2f} (cpus={summary['cpus']})",
            file=sys.stderr,
        )
        return 1
    if args.obs_overhead:
        if not summary["obs"]["identical_to_serial"]:
            print(
                "FAIL: observability changed the campaign report",
                file=sys.stderr,
            )
            return 1
        if (
            args.assert_obs_overhead is not None
            and summary["obs"]["enabled_overhead_ratio"]
            > args.assert_obs_overhead
        ):
            print(
                f"FAIL: obs-enabled overhead "
                f"{summary['obs']['enabled_overhead_ratio']:.3f} > allowed "
                f"{args.assert_obs_overhead:.3f}",
                file=sys.stderr,
            )
            return 1
        if (
            args.assert_obs_disabled_overhead is not None
            and summary["obs"]["disabled_overhead_ratio"]
            > args.assert_obs_disabled_overhead
        ):
            print(
                f"FAIL: obs-disabled overhead "
                f"{summary['obs']['disabled_overhead_ratio']:.3f} > allowed "
                f"{args.assert_obs_disabled_overhead:.3f}",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
