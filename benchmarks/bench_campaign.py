#!/usr/bin/env python3
"""Benchmark the parallel campaign engine against the serial baseline.

Runs the same campaign twice — ``workers=1`` and ``workers=N`` — each
in a fresh subprocess (so wall time and peak RSS are clean, with no
warm caches or shared interpreter state), verifies the two runs
produced byte-identical reports, and writes a JSON summary::

    python benchmarks/bench_campaign.py --transfers 6 --workers 2 \
        --out BENCH_campaign.json

Speedup is machine-dependent: on a single-CPU box the parallel run
cannot win and the report says so honestly (``cpus`` is recorded).
Pass ``--assert-speedup X`` to fail the run unless speedup >= X —
CI uses this on multi-core runners as a regression gate.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def _child(args: argparse.Namespace) -> int:
    """One measured run; emits a single JSON line on stdout."""
    from repro.api import Pipeline

    start = time.perf_counter()
    result = Pipeline(workers=args.workers).campaign(
        args.campaign,
        seed=args.seed,
        transfers=args.transfers,
        overrides={"zero_bug_episodes": 0},
        checkpoint_dir=args.checkpoint_dir or None,
    )
    wall_s = time.perf_counter() - start
    payload = json.dumps(result.to_dict(), sort_keys=True)
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        children = resource.getrusage(resource.RUSAGE_CHILDREN)
        peak_rss_kb = max(usage.ru_maxrss, children.ru_maxrss)
    except ImportError:  # non-POSIX: report what we can
        peak_rss_kb = 0
    print(json.dumps({
        "wall_s": wall_s,
        "records": len(result.records),
        "digest": hashlib.sha256(payload.encode()).hexdigest(),
        "peak_rss_kb": peak_rss_kb,
        "health_ok": result.health.ok,
    }))
    return 0


def _measure(
    args: argparse.Namespace, workers: int, checkpoint_dir: str = ""
) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [
        sys.executable, str(Path(__file__).resolve()),
        "--as-child",
        "--campaign", args.campaign,
        "--seed", str(args.seed),
        "--transfers", str(args.transfers),
        "--workers", str(workers),
    ]
    if checkpoint_dir:
        cmd += ["--checkpoint-dir", checkpoint_dir]
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise RuntimeError(f"child run (workers={workers}) failed")
    return json.loads(proc.stdout.strip().splitlines()[-1])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--campaign", default="ISP_A-Quagga")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--transfers", type=int, default=6)
    parser.add_argument(
        "--workers", type=int, default=4,
        help="worker count of the parallel run (default: 4)",
    )
    parser.add_argument("--out", default="BENCH_campaign.json")
    parser.add_argument(
        "--assert-speedup", type=float, metavar="X",
        help="exit nonzero unless parallel speedup >= X",
    )
    parser.add_argument(
        "--checkpoint-overhead", action="store_true",
        help="also measure a serial run with episode checkpointing "
        "(fsync'd journal) and report its overhead vs. the plain run",
    )
    parser.add_argument(
        "--as-child", action="store_true", help=argparse.SUPPRESS
    )
    parser.add_argument(
        "--checkpoint-dir", default="", help=argparse.SUPPRESS
    )
    args = parser.parse_args(argv)
    if args.as_child:
        return _child(args)

    sys.path.insert(0, str(REPO_SRC))
    from repro.exec.pool import available_parallelism

    print(f"serial run: {args.campaign}, {args.transfers} transfers ...")
    serial = _measure(args, workers=1)
    print(f"  {serial['wall_s']:.1f}s, {serial['records']} records")
    print(f"parallel run: workers={args.workers} ...")
    parallel = _measure(args, workers=args.workers)
    print(f"  {parallel['wall_s']:.1f}s, {parallel['records']} records")

    identical = serial["digest"] == parallel["digest"]
    speedup = serial["wall_s"] / parallel["wall_s"]
    summary = {
        "benchmark": "campaign",
        "campaign": args.campaign,
        "seed": args.seed,
        "transfers": args.transfers,
        "workers": args.workers,
        "cpus": available_parallelism(),
        "serial": {
            "wall_s": round(serial["wall_s"], 3),
            "transfers_per_s": round(serial["records"] / serial["wall_s"], 4),
            "peak_rss_kb": serial["peak_rss_kb"],
        },
        "parallel": {
            "wall_s": round(parallel["wall_s"], 3),
            "transfers_per_s": round(
                parallel["records"] / parallel["wall_s"], 4
            ),
            "peak_rss_kb": parallel["peak_rss_kb"],
        },
        "speedup": round(speedup, 3),
        "identical": identical,
    }

    if args.checkpoint_overhead:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="bench-ckpt-") as ckpt:
            print("checkpointed serial run (fsync'd journal) ...")
            journaled = _measure(args, workers=1, checkpoint_dir=ckpt)
        print(f"  {journaled['wall_s']:.1f}s, {journaled['records']} records")
        summary["checkpointed"] = {
            "wall_s": round(journaled["wall_s"], 3),
            "peak_rss_kb": journaled["peak_rss_kb"],
            "identical_to_serial": journaled["digest"] == serial["digest"],
            # >1.0 means the journal costs time; the interesting number
            # for deciding whether to checkpoint long campaigns.
            "overhead_ratio": round(
                journaled["wall_s"] / serial["wall_s"], 3
            ),
        }

    Path(args.out).write_text(json.dumps(summary, indent=2) + "\n")
    print(json.dumps(summary, indent=2))
    print(f"summary -> {args.out}")

    if not identical:
        print("FAIL: parallel report differs from serial", file=sys.stderr)
        return 1
    if args.checkpoint_overhead and not summary["checkpointed"][
        "identical_to_serial"
    ]:
        print(
            "FAIL: checkpointed report differs from plain serial",
            file=sys.stderr,
        )
        return 1
    if args.assert_speedup is not None and speedup < args.assert_speedup:
        print(
            f"FAIL: speedup {speedup:.2f} < required "
            f"{args.assert_speedup:.2f} (cpus={summary['cpus']})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
