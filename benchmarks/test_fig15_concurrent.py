"""Figure 15 — effect of concurrent table transfers on the receiver.

Paper: with fewer than ~10 concurrent transfers the connections are
slightly bounded by the TCP receiver window; as concurrency grows the
receiving BGP process becomes the bottleneck and its delay ratio
dominates.
"""


def build_figure(sweep):
    lines = [f"{'concurrent':>10s} {'bgp_receiver':>13s} {'tcp_adv_wnd':>12s}"]
    for k in sorted(sweep):
        ratios = sweep[k]
        lines.append(
            f"{k:10d} {ratios['bgp_receiver_app']:13.3f} "
            f"{ratios['tcp_advertised_window']:12.3f}"
        )
    return "\n".join(lines), sweep


def test_fig15(concurrency_sweep, artifact_writer, benchmark):
    text, sweep = benchmark(build_figure, concurrency_sweep)
    artifact_writer("fig15_concurrent", text)
    print("\n" + text)
    ks = sorted(sweep)
    low, high = ks[0], ks[-1]
    # At low concurrency the TCP receiver window is the (slight) bound.
    assert sweep[low]["tcp_advertised_window"] >= sweep[low]["bgp_receiver_app"]
    # At high concurrency the BGP receiver process dominates.
    assert sweep[high]["bgp_receiver_app"] > 0.5
    assert sweep[high]["bgp_receiver_app"] > sweep[high]["tcp_advertised_window"]
    # The BGP-receiver ratio grows (weakly) with concurrency.
    bgp_series = [sweep[k]["bgp_receiver_app"] for k in ks]
    assert bgp_series[-1] > bgp_series[0]
