"""Figure 9 — session failure and peer-group blocking timeline.

Paper: at t1 the vendor collector fails; the router retransmits into
the void and the whole peer group pauses; at t2 (t1 + hold time) the
faulty session times out, leaves the group, and the healthy Quagga
connection immediately resumes.
"""


def build_figure(peer_group_episodes):
    lines = []
    blocked_durations = {}
    for name, episode in peer_group_episodes.items():
        report = episode.blocked_report
        lines.append(f"{name}:")
        if report.detected:
            for rng in report.blocked_ranges:
                lines.append(
                    f"  t1={rng.start / 1e6:7.1f}s  t2={rng.end / 1e6:7.1f}s  "
                    f"blocked {rng.duration / 1e6:6.1f}s"
                )
        else:
            lines.append("  (no blocking detected)")
        blocked_durations[name] = report.induced_delay_us / 1e6
    return "\n".join(lines), blocked_durations


def test_fig9(peer_group_episodes, artifact_writer, benchmark):
    text, blocked = benchmark(build_figure, peer_group_episodes)
    artifact_writer("fig9_peergroup", text)
    print("\n" + text)
    # Every episode is detected and blocks for roughly the hold time:
    # 90s for ISP_A, 60s for RV (the paper's 180s default scaled).
    assert 60 <= blocked["ISP_A-Vendor"] <= 100
    assert 60 <= blocked["ISP_A-Quagga"] <= 100
    assert 35 <= blocked["RV"] <= 70
