"""Figure 4 — stretch of table transfers per router-collector pair.

Paper: for each router with more than two transfers of similar size,
the stretch ratio = slowest / fastest duration.  Routers commonly send
the same table 2-5x slower than their own best; the tail exceeds an
order of magnitude.
"""

from collections import defaultdict

from benchmarks.conftest import percentile


def build_stretch(campaigns):
    lines = [f"{'trace':14s} {'router':22s} {'n':>3s} {'stretch':>9s}"]
    ratios_by_trace = {}
    for name, result in campaigns.items():
        by_router = defaultdict(list)
        for record in result.records:
            by_router[(record.router, record.table_prefixes)].append(
                record.duration_s
            )
        ratios = []
        for (router, prefixes), durations in sorted(by_router.items()):
            if len(durations) < 2:
                continue
            ratio = max(durations) / max(min(durations), 1e-9)
            ratios.append(ratio)
            lines.append(
                f"{name:14s} {router + f'/{prefixes}':22s} "
                f"{len(durations):3d} {ratio:9.1f}"
            )
        ratios_by_trace[name] = sorted(ratios)
    lines.append("")
    lines.append("stretch CDF per trace:")
    for name, ratios in ratios_by_trace.items():
        if ratios:
            lines.append(
                f"  {name:14s} p50={percentile(ratios, 0.5):6.1f} "
                f"max={ratios[-1]:6.1f} (n={len(ratios)})"
            )
    return "\n".join(lines), ratios_by_trace


def test_fig4(campaigns, artifact_writer, benchmark):
    text, ratios_by_trace = benchmark(build_stretch, campaigns)
    artifact_writer("fig4_stretch", text)
    print("\n" + text)
    all_ratios = [r for ratios in ratios_by_trace.values() for r in ratios]
    assert all_ratios, "no router had comparable repeat transfers"
    # Some routers send the same table at least 2x slower than their best.
    assert any(r >= 2 for r in all_ratios)
    # The distribution tail exceeds an order of magnitude.
    assert max(all_ratios) > 10
