"""Table IV — distribution of major delay factors per trace.

Paper shape (threshold = 30% of the transfer duration):

* sender-side factors are the most prevalent major group (67-84%),
  receiver-side second (42-61%), network rare;
* within ISP_A, BGP (application) factors outnumber TCP (window)
  factors; for RouteViews's 16KB windows the TCP side is relatively
  more prominent;
* a few transfers have no major factor at all ("Unknown").
"""

from repro.analysis.factors import FACTORS


def build_table(campaigns):
    lines = []
    summary = {}
    for name, result in campaigns.items():
        n = len(result.records)
        group_counts = {"sender": 0, "receiver": 0, "network": 0}
        factor_counts = {factor: 0 for factor in FACTORS}
        unknown = 0
        for record in result.records:
            majors = record.factors.major_groups()
            if not majors:
                unknown += 1
            for group in majors:
                group_counts[group] += 1
                dominant = record.factors.dominant_factor(group)
                if dominant:
                    factor_counts[dominant] += 1
        summary[name] = (n, group_counts, factor_counts, unknown)
        lines.append(f"\n{name} ({n} transfers)")
        lines.append(f"  Sender-side limited   {group_counts['sender']:4d}")
        lines.append(f"  Receiver-side limited {group_counts['receiver']:4d}")
        lines.append(f"  Network limited       {group_counts['network']:4d}")
        lines.append(f"  Unknown               {unknown:4d}")
        lines.append("  breakdown:")
        for factor, (series, group) in FACTORS.items():
            lines.append(
                f"    {factor:22s} ({group:8s}) {factor_counts[factor]:4d}"
            )
    return "\n".join(lines), summary


def test_table4(campaigns, artifact_writer, benchmark):
    text, summary = benchmark(build_table, campaigns)
    artifact_writer("table4_factors", text)
    print(text)
    for name, (n, groups, factors, unknown) in summary.items():
        # Sender-side factors are the most prevalent major group.
        assert groups["sender"] >= groups["receiver"] >= groups["network"], name
        assert groups["sender"] / n > 0.4, name
    # Within ISP_A, BGP app factors outnumber TCP window factors on the
    # sender side (the paper's 2:1 to 7:1 observation).
    for name in ("ISP_A-Vendor", "ISP_A-Quagga"):
        _, _, factors, _ = summary[name]
        assert factors["bgp_sender_app"] >= factors["tcp_congestion_window"], name
    # RV's small advertised window makes the receiver-side TCP factor
    # relatively more prominent than in ISP_A.
    def tcp_receiver_share(name):
        n, _, factors, _ = summary[name]
        return factors["tcp_advertised_window"] / n

    assert tcp_receiver_share("RV") >= tcp_receiver_share("ISP_A-Quagga")
