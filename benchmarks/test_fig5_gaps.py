"""Figure 5 — a table transfer with prolonged timer gaps.

Paper: data-packet arrivals plotted over time show regular pauses much
longer than the RTT, caused by the timer-driven sender implementation.
The regenerated artifact is the inter-packet gap sequence; the assert
checks the gaps cluster at the injected timer period.
"""

import random

from repro.analysis.profile import Trace
from repro.bgp.sender_models import TimerBatchSender
from repro.bgp.table import generate_table
from repro.core.units import seconds
from repro.netsim.simulator import Simulator
from repro.workloads.scenarios import MonitoringSetup, RouterParams

TIMER_US = 200_000


def run_scenario():
    sim = Simulator()
    setup = MonitoringSetup(sim)
    table = generate_table(30_000, random.Random(5))
    setup.add_router(
        RouterParams(
            name="r1",
            ip="10.5.0.1",
            table=table,
            sender_model=TimerBatchSender(sim, TIMER_US, 10),
        )
    )
    setup.start()
    sim.run(until_us=seconds(120))
    return setup.sniffer.sorted_records()


def build_figure(records):
    trace = Trace.from_pcap(records)
    connection = next(iter(trace))
    data = connection.data_packets()
    gaps = [
        b.timestamp_us - a.timestamp_us for a, b in zip(data, data[1:])
    ]
    lines = ["packet#, time_s, gap_ms"]
    for i, packet in enumerate(data[:120]):
        gap = gaps[i - 1] / 1000 if i else 0.0
        lines.append(f"{i}, {packet.timestamp_us / 1e6:.4f}, {gap:.1f}")
    long_gaps = [g for g in gaps if g > 50_000]
    lines.append(f"\nlong gaps (>50ms): {len(long_gaps)}")
    return "\n".join(lines), gaps


def test_fig5(artifact_writer, benchmark):
    records = run_scenario()
    text, gaps = benchmark(build_figure, records)
    artifact_writer("fig5_gaps", text)
    print("\n" + text.splitlines()[-1])
    rtt_us = 10_000
    long_gaps = [g for g in gaps if g > 5 * rtt_us]
    # Prolonged gaps (far beyond the RTT) dominate the timeline...
    assert len(long_gaps) > 20
    # ...and cluster at the timer period.
    near_timer = [g for g in long_gaps if abs(g - TIMER_US) < 30_000]
    assert len(near_timer) / len(long_gaps) > 0.8
