"""Legacy setup shim for environments without wheel build support."""

from setuptools import setup

setup()
